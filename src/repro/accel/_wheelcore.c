/* _wheelcore.c — compiled dispatch core for the repro timing wheel.
 *
 * This extension reimplements the two hot-kernel dispatch loops of
 * repro.sim.engine.TimingWheel (run_until, run) plus the memory
 * controller's bank-ready/row-hit scan, behind a base type the Python
 * backend classes subclass.  It is a *mirror*, not a redesign: every
 * loop below is a line-for-line port of the pure-Python reference, and
 * the determinism contract is byte-identical dispatch order — see
 * DESIGN.md §12 for the argument.
 *
 * Marshal compatibility: all scheduler state lives in Python-visible
 * members (plain lists for the wheel/overflow, C long longs for the
 * counters, exposed as attributes with the exact names the pure class
 * uses).  The pure-Python scheduling entry points (schedule/post/...),
 * the sanitizer, the checkpoint pickler, and the inlined wheel inserts
 * in system.py/controller.py therefore operate on a WheelCore instance
 * unchanged, and wheel state moves losslessly between backends.
 *
 * Overflow-heap layout: the siftup/siftdown routines replicate CPython
 * heapq's algorithms exactly (element comparisons via PyObject_RichCompareBool
 * on the (when, seq, entry) tuples), so a heap built by any mix of C
 * and Python pushes has the identical array layout — which the
 * sanitizer's on_restore heap-order audit and cross-backend checkpoint
 * restores both rely on.
 *
 * Build: gcc -O2 -shared -fPIC (see repro.accel.build); no libraries
 * beyond Python.h.
 */
#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include <structmember.h>

#define WHEEL_BITS 12
#define WHEEL_SIZE (1LL << WHEEL_BITS)
#define WHEEL_MASK (WHEEL_SIZE - 1)
/* Pure code uses 1 << 63 for "no refill pending"; the C loop never
 * materializes the sentinel as a Python int, so LLONG_MAX serves. */
#define NEVER_LL LLONG_MAX

/* SimulationError, injected by repro.accel after load (_install). */
static PyObject *g_sim_error = NULL;
/* Process-wide dispatch counter for this backend; engine.dispatched_total()
 * adds it to the pure loop's module counter. */
static long long g_dispatched_total = 0;
/* Process-wide native fast-path counters (per-engine twins live on the
 * WheelCore struct); fastpath_stats() reports these. */
static long long g_fp_hits = 0;
static long long g_fp_misses = 0;

/* interned attribute / method names */
static PyObject *s_cancelled, *s_fired, *s_callback, *s_args;
static PyObject *s_as_cycles, *s_on_event, *s_deadline_word;
static PyObject *s_bank_id, *s_row_id, *s_open_page, *s_open_row;
static PyObject *s_prep_hit, *s_prep_miss;
/* native fast path: pacer (s_burst doubles for bus._burst) */
static PyObject *s_popleft, *s_release_token, *s_blocked, *s_den;
static PyObject *s_period_num, *s_cnext_scaled, *s_released;
/* native fast path: controller */
static PyObject *s_pass_token, *s_pass_at, *s_draining_writes;
static PyObject *s_read_queue, *s_write_queue, *s_wm_low, *s_wm_high;
static PyObject *s_banks, *s_uniform_prep, *s_bus, *s_free_at;
static PyObject *s_busy_cycles, *s_transfers, *s_burst, *s_busy_until;
static PyObject *s_accesses, *s_row_hits, *s_recovery;
static PyObject *s_bank_busy, *s_busy_times;
static PyObject *s_dispatched_at, *s_issued_at, *s_on_issue, *s_issued;
static PyObject *s_on_complete, *s_completed, *s_on_accept, *s_arrived;
static PyObject *s_bus_busy_cycles, *s_is_memory_write, *s_is_read;
static PyObject *s_occ_integral, *s_occ_last_update;
static PyObject *s_fused, *s_respond_fn, *s_complete_name;
static PyObject *s_complete_fused_name, *s_run_pass_name, *s_core_id;
static PyObject *s_issue_name;
static PyObject *s_stats_attr, *s_inflight, *s_active_since;
static PyObject *s_active_cycles, *s_mc_active_cycles, *s_min_prep;
static PyObject *s_space_listeners, *s_mc_id, *s_policy, *s_pick;
static PyObject *s_read_capacity, *s_write_capacity, *s_rejects;
static PyObject *s_requests_rejected, *s_reads_accepted, *s_writes_accepted;
static PyObject *s_requests_enqueued, *s_arrived_mc_at, *s_map, *s_decode;
static PyObject *s_addr, *s_record_completion, *s_on_read_complete;
static PyObject *s_try_enqueue, *s_engine_pub, *s_engine_priv;
/* native fast path: stats */
static PyObject *s_classes, *s_qos_id, *s_size, *s_bytes_read;
static PyObject *s_bytes_written, *s_reads_completed, *s_writes_completed;
static PyObject *s_read_latency_sum, *s_read_latency_max;
static PyObject *s_reads_attributed, *s_reads_unattributed;
static PyObject *s_stage_pacer_sum, *s_stage_noc_sum, *s_stage_queue_sum;
static PyObject *s_stage_service_sum, *s_sample_latencies, *s_epoch_bytes;
static PyObject *s_created_at, *s_released_at, *s_completed_at;
/* native fast path: system */
static PyObject *s_mc_arrivals, *s_mc_pump_armed, *s_mc_space_hint;
static PyObject *s_mc_pending_writes, *s_mc_pending_reads;
static PyObject *s_mc_read_sources, *s_mc_rr_pointer, *s_resp_inbox;
static PyObject *s_controllers, *s_pump_mc_name, *s_flush_responses_name;
static PyObject *s_respond_name, *s_l3_hit, *s_noc_seq;
static PyObject *s_sort, *s_append;
/* native fast path: PABST priority arbiter */
static PyObject *s_registry, *s_slack, *s_row_hits_first, *s_clocks;
static PyObject *s_last_picked_deadline, *s_capped_deadlines;
static PyObject *s_virtual_deadline, *s_req_id, *s_stride;
static PyObject *s_qos_classes; /* QoSRegistry._classes */
/* native fast path: instance-dict shadow guards.  Pure Python freshly
 * looks these methods up at call/schedule time, so an instance-dict
 * override (a test monkeypatching one component) must push that
 * component off the fast path — the mirrors bind cached class
 * functions and inlined bodies that would silently bypass it. */
static PyObject *s_issue_ready_name, *s_ready_name, *s_notify_space_name;
static PyObject *s_schedule_wakeup_name, *s_request_pass_name;
static PyObject *s_retire_name, *s_update_occupancy_name;
static PyObject *s_release_head_name, *s_release_now_name;
static PyObject *s_release_time_name;
static PyObject *s_admit_pending_name, *s_queue_pending_name;
#define SHADOW_MAX 12
static PyObject *g_shadow_ctrl[SHADOW_MAX];
static PyObject *g_shadow_pacer[SHADOW_MAX];
static PyObject *g_shadow_system[SHADOW_MAX];
static PyObject *g_shadow_arb[SHADOW_MAX];
static int g_shadow_ctrl_n, g_shadow_pacer_n, g_shadow_system_n,
    g_shadow_arb_n;

/* shared immortal-ish objects, created at module init / kind install */
static PyObject *g_empty_tuple = NULL;
static PyObject *g_zero = NULL;
static PyObject *g_one = NULL;
static PyObject *g_kw_key = NULL;   /* {"key": system._BY_KEY}      */
static PyObject *g_kw_noc = NULL;   /* {"key": system._BY_NOC_SEQ}  */
static PyObject *g_cls_controller = NULL;
static PyObject *g_cls_bank = NULL;
static PyObject *g_cls_databus = NULL;
static PyObject *g_cls_stats = NULL;
static PyObject *g_cls_class_stats = NULL;
static PyObject *g_cls_deque = NULL;
/* Registered kind functions the handlers re-bind with PyMethod_New
 * (cheaper than a descriptor lookup; identical to `owner._name` because
 * the exact-class guard pins the class attribute to these functions). */
static PyObject *g_fn_run_pass = NULL;
static PyObject *g_fn_complete = NULL;
static PyObject *g_fn_complete_fused = NULL;
static PyObject *g_fn_pump_mc = NULL;
static PyObject *g_fn_flush_responses = NULL;
/* Synchronous native mirrors (not wheel-dispatched): the space-hint
 * listener and the PABST arbiter, recognized at their C call sites. */
static PyObject *g_fn_on_mc_space = NULL;
static PyObject *g_cls_system = NULL;
static PyObject *g_cls_arbiter = NULL;

#define FAR_LL (1LL << 62)

/* ------------------------------------------------------------------ */
/* small helpers                                                      */
/* ------------------------------------------------------------------ */

static int
ll_from(PyObject *obj, long long *out)
{
    long long value = PyLong_AsLongLong(obj);
    if (value == -1 && PyErr_Occurred())
        return -1;
    *out = value;
    return 0;
}

/* callback(*args): args is a tuple on every engine-built entry; fall
 * back to sequence conversion for hand-built entries, mirroring the
 * pure loop's *-unpacking semantics. */
static int
call_callback(PyObject *callback, PyObject *args)
{
    PyObject *result;
    if (PyTuple_Check(args)) {
        result = PyObject_CallObject(callback, args);
    }
    else {
        PyObject *packed = PySequence_Tuple(args);
        if (packed == NULL)
            return -1;
        result = PyObject_CallObject(callback, packed);
        Py_DECREF(packed);
    }
    if (result == NULL)
        return -1;
    Py_DECREF(result);
    return 0;
}

/* ------------------------------------------------------------------ */
/* heapq replica (push/pop on a plain PyList of (when, seq, entry))   */
/* ------------------------------------------------------------------ */

static int
heap_lt(PyObject *a, PyObject *b)
{
    /* Exactly heapq's `a < b`; (when, seq) is unique so the compare
     * never falls through to the entry. */
    return PyObject_RichCompareBool(a, b, Py_LT);
}

static int
heap_siftdown(PyObject *heap, Py_ssize_t startpos, Py_ssize_t pos)
{
    PyObject *newitem = PyList_GET_ITEM(heap, pos);
    Py_INCREF(newitem);
    while (pos > startpos) {
        Py_ssize_t parentpos = (pos - 1) >> 1;
        PyObject *parent = PyList_GET_ITEM(heap, parentpos);
        int lt = heap_lt(newitem, parent);
        if (lt < 0) {
            Py_DECREF(newitem);
            return -1;
        }
        if (!lt)
            break;
        Py_INCREF(parent);
        PyList_SetItem(heap, pos, parent);
        pos = parentpos;
    }
    PyList_SetItem(heap, pos, newitem);
    return 0;
}

static int
heap_siftup(PyObject *heap, Py_ssize_t pos)
{
    Py_ssize_t endpos = PyList_GET_SIZE(heap);
    Py_ssize_t startpos = pos;
    PyObject *newitem = PyList_GET_ITEM(heap, pos);
    Py_INCREF(newitem);
    Py_ssize_t childpos = 2 * pos + 1;
    while (childpos < endpos) {
        Py_ssize_t rightpos = childpos + 1;
        if (rightpos < endpos) {
            int lt = heap_lt(PyList_GET_ITEM(heap, childpos),
                             PyList_GET_ITEM(heap, rightpos));
            if (lt < 0) {
                Py_DECREF(newitem);
                return -1;
            }
            if (!lt)
                childpos = rightpos;
        }
        PyObject *child = PyList_GET_ITEM(heap, childpos);
        Py_INCREF(child);
        PyList_SetItem(heap, pos, child);
        pos = childpos;
        childpos = 2 * pos + 1;
    }
    PyList_SetItem(heap, pos, newitem);
    return heap_siftdown(heap, startpos, pos);
}

static int
heap_push(PyObject *heap, PyObject *item)
{
    if (PyList_Append(heap, item) < 0)
        return -1;
    return heap_siftdown(heap, 0, PyList_GET_SIZE(heap) - 1);
}

/* Returns a new reference, or NULL on error. */
static PyObject *
heap_pop(PyObject *heap)
{
    Py_ssize_t n = PyList_GET_SIZE(heap);
    if (n == 0) {
        PyErr_SetString(PyExc_IndexError, "index out of range");
        return NULL;
    }
    PyObject *lastelt = PyList_GET_ITEM(heap, n - 1);
    Py_INCREF(lastelt);
    if (PyList_SetSlice(heap, n - 1, n, NULL) < 0) {
        Py_DECREF(lastelt);
        return NULL;
    }
    if (PyList_GET_SIZE(heap)) {
        PyObject *returnitem = PyList_GET_ITEM(heap, 0);
        Py_INCREF(returnitem);
        PyList_SetItem(heap, 0, lastelt);
        if (heap_siftup(heap, 0) < 0) {
            Py_DECREF(returnitem);
            return NULL;
        }
        return returnitem;
    }
    return lastelt;
}

/* when of overflow[0]; -1 on error, 0 with *has=0 when empty. */
static int
overflow_head(PyObject *overflow, long long *when, int *has)
{
    if (PyList_GET_SIZE(overflow) == 0) {
        *has = 0;
        return 0;
    }
    PyObject *head = PyList_GET_ITEM(overflow, 0);
    if (!PyTuple_Check(head) || PyTuple_GET_SIZE(head) < 3) {
        PyErr_SetString(PyExc_TypeError,
                        "overflow heap entry is not a (when, seq, entry) tuple");
        return -1;
    }
    if (ll_from(PyTuple_GET_ITEM(head, 0), when) < 0)
        return -1;
    *has = 1;
    return 0;
}

/* ------------------------------------------------------------------ */
/* WheelCore type                                                     */
/* ------------------------------------------------------------------ */

typedef struct {
    PyObject_HEAD
    long long now;
    long long seq;
    long long wheel_pos;
    long long horizon;
    long long wheel_count;
    long long live;
    long long dispatched;
    long long fastpath_hits;    /* events run by a native kind handler  */
    long long fastpath_misses;  /* events that bounced back into Python */
    PyObject *wheel;       /* list of WHEEL_SIZE per-cycle FIFO lists   */
    PyObject *wheel_late;  /* second bucket array for the late phase    */
    PyObject *overflow;    /* heap list of (when, seq, entry)           */
    PyObject *sanitizer;   /* None or SimSanitizer                      */
    PyObject *tracer;      /* None or RequestTracer                     */
} WheelCore;

/* Native fast path (implementation after the controller kernels):
 * returns 1 when a registered kind handler ran the callback natively,
 * 0 to fall back to the Python call path, -1 on error.  Counts its own
 * hits and misses; Event-shaped entries never reach it, so their fires
 * are counted as misses at the call sites. */
static int native_dispatch(WheelCore *self, PyObject *cb, PyObject *args);

static int
check_state(WheelCore *self)
{
    if (self->wheel == NULL || !PyList_Check(self->wheel) ||
        self->wheel_late == NULL || !PyList_Check(self->wheel_late) ||
        self->overflow == NULL || !PyList_Check(self->overflow)) {
        PyErr_SetString(PyExc_TypeError,
                        "WheelCore state is uninitialized (wheel arrays "
                        "must be lists; did __init__ run?)");
        return -1;
    }
    if (PyList_GET_SIZE(self->wheel) != WHEEL_SIZE ||
        PyList_GET_SIZE(self->wheel_late) != WHEEL_SIZE) {
        PyErr_SetString(PyExc_TypeError,
                        "WheelCore bucket arrays must hold exactly "
                        "4096 buckets");
        return -1;
    }
    return 0;
}

/* self._refill(), C side: move overflow entries now inside the window. */
static int
core_refill(WheelCore *self)
{
    long long moved = 0;
    for (;;) {
        long long when;
        int has;
        if (overflow_head(self->overflow, &when, &has) < 0)
            return -1;
        if (!has || when >= self->horizon)
            break;
        PyObject *item = heap_pop(self->overflow);
        if (item == NULL)
            return -1;
        PyObject *bucket =
            PyList_GET_ITEM(self->wheel, (Py_ssize_t)(when & WHEEL_MASK));
        if (!PyList_Check(bucket)) {
            Py_DECREF(item);
            PyErr_SetString(PyExc_TypeError, "wheel bucket is not a list");
            return -1;
        }
        int rc = PyList_Append(bucket, PyTuple_GET_ITEM(item, 2));
        Py_DECREF(item);
        if (rc < 0)
            return -1;
        moved++;
    }
    self->wheel_count += moved;
    return 0;
}

/* Insert a fused chain's continuation: mirror of the pure loops' inline
 * block.  `horizon` is the caller's view (local variable in run_until,
 * self->horizon in run), matching the pure code exactly. */
static int
chain_continue(WheelCore *self, PyObject *entry, long long pos,
               long long horizon)
{
    long long link_delay;
    if (ll_from(PyList_GET_ITEM(entry, 2), &link_delay) < 0)
        return -1;
    long long when2 = pos + link_delay;
    self->live += 1;
    PyObject *cont = PyTuple_Pack(2, PyList_GET_ITEM(entry, 3),
                                  PyList_GET_ITEM(entry, 4));
    if (cont == NULL)
        return -1;
    if (when2 < horizon) {
        PyObject *bucket =
            PyList_GET_ITEM(self->wheel, (Py_ssize_t)(when2 & WHEEL_MASK));
        int rc = PyList_Append(bucket, cont);
        Py_DECREF(cont);
        if (rc < 0)
            return -1;
        self->wheel_count += 1;
        return 0;
    }
    long long seq = self->seq;
    self->seq = seq + 1;
    PyObject *when_obj = PyLong_FromLongLong(when2);
    PyObject *seq_obj = PyLong_FromLongLong(seq);
    PyObject *item = NULL;
    if (when_obj != NULL && seq_obj != NULL)
        item = PyTuple_Pack(3, when_obj, seq_obj, cont);
    Py_XDECREF(when_obj);
    Py_XDECREF(seq_obj);
    Py_DECREF(cont);
    if (item == NULL)
        return -1;
    int rc = heap_push(self->overflow, item);
    Py_DECREF(item);
    return rc;
}

/* Dispatch one Event-shaped entry.  Returns 1 if it fired, 0 if it was
 * cancelled (skipped), -1 on error. */
static int
dispatch_event(PyObject *entry)
{
    PyObject *flag = PyObject_GetAttr(entry, s_cancelled);
    if (flag == NULL)
        return -1;
    int cancelled = PyObject_IsTrue(flag);
    Py_DECREF(flag);
    if (cancelled < 0)
        return -1;
    if (cancelled)
        return 0;
    if (PyObject_SetAttr(entry, s_fired, Py_True) < 0)
        return -1;
    PyObject *callback = PyObject_GetAttr(entry, s_callback);
    if (callback == NULL)
        return -1;
    PyObject *args = PyObject_GetAttr(entry, s_args);
    if (args == NULL) {
        Py_DECREF(callback);
        return -1;
    }
    int rc = call_callback(callback, args);
    Py_DECREF(callback);
    Py_DECREF(args);
    return rc < 0 ? -1 : 1;
}

static int
sanitizer_on_event(PyObject *sanitizer, long long when, long long prev)
{
    PyObject *when_obj = PyLong_FromLongLong(when);
    if (when_obj == NULL)
        return -1;
    PyObject *prev_obj = PyLong_FromLongLong(prev);
    if (prev_obj == NULL) {
        Py_DECREF(when_obj);
        return -1;
    }
    PyObject *result = PyObject_CallMethodObjArgs(
        sanitizer, s_on_event, when_obj, prev_obj, NULL);
    Py_DECREF(when_obj);
    Py_DECREF(prev_obj);
    if (result == NULL)
        return -1;
    Py_DECREF(result);
    return 0;
}

/* Dispatch every entry of one bucket list for cycle `pos`, picking up
 * same-cycle appends (list-iterator semantics: the size is re-read every
 * step).  Mirrors one `for entry in bucket:` loop of run_until.
 *
 * On success *dispatched_out has been advanced exactly as the pure loop
 * advances its local `dispatched`; *prev_io carries the sanitizer's
 * previous-dispatch clock across buckets.  Returns -1 on error. */
static int
dispatch_bucket(WheelCore *self, PyObject *bucket, long long pos,
                long long horizon, PyObject *sanitizer,
                long long *dispatched_out, long long *prev_io)
{
    long long skipped = 0;
    long long count = 0;
    Py_ssize_t index = 0;
    while (index < PyList_GET_SIZE(bucket)) {
        PyObject *entry = PyList_GET_ITEM(bucket, index);
        Py_INCREF(entry);
        index++;
        if (PyTuple_CheckExact(entry)) {
            if (sanitizer != NULL) {
                if (sanitizer_on_event(sanitizer, pos, *prev_io) < 0)
                    goto fail;
                *prev_io = pos;
            }
            int handled = native_dispatch(self, PyTuple_GET_ITEM(entry, 0),
                                          PyTuple_GET_ITEM(entry, 1));
            if (handled < 0)
                goto fail;
            if (!handled &&
                call_callback(PyTuple_GET_ITEM(entry, 0),
                              PyTuple_GET_ITEM(entry, 1)) < 0)
                goto fail;
            count++;
        }
        else if (PyList_CheckExact(entry)) {
            if (sanitizer != NULL) {
                if (sanitizer_on_event(sanitizer, pos, *prev_io) < 0)
                    goto fail;
                *prev_io = pos;
            }
            int handled = native_dispatch(self, PyList_GET_ITEM(entry, 0),
                                          PyList_GET_ITEM(entry, 1));
            if (handled < 0)
                goto fail;
            if (!handled &&
                call_callback(PyList_GET_ITEM(entry, 0),
                              PyList_GET_ITEM(entry, 1)) < 0)
                goto fail;
            if (chain_continue(self, entry, pos, horizon) < 0)
                goto fail;
            count++;
        }
        else {
            if (sanitizer != NULL) {
                /* sanitized loop checks `cancelled` before on_event */
                PyObject *flag = PyObject_GetAttr(entry, s_cancelled);
                if (flag == NULL)
                    goto fail;
                int cancelled = PyObject_IsTrue(flag);
                Py_DECREF(flag);
                if (cancelled < 0)
                    goto fail;
                if (cancelled) {
                    Py_DECREF(entry);
                    continue;
                }
                if (sanitizer_on_event(sanitizer, pos, *prev_io) < 0)
                    goto fail;
                *prev_io = pos;
            }
            int fired = dispatch_event(entry);
            if (fired < 0)
                goto fail;
            if (fired) {
                /* Event entries have no kind tag: always a miss */
                self->fastpath_misses += 1;
                g_fp_misses += 1;
                count++;
            }
            else
                skipped++;
        }
        Py_DECREF(entry);
    }
    /* settle per bucket, matching `dispatched += len(bucket) - skipped`
     * (the final length covers same-cycle appends; every appended entry
     * was also dispatched by the loop above) */
    if (sanitizer == NULL)
        *dispatched_out += PyList_GET_SIZE(bucket) - skipped;
    else
        *dispatched_out += count;
    return 0;
fail:
    /* the pure loop's per-entry `dispatched += 1` settlement is what the
     * finally block sees on an exception: entries fully dispatched before
     * the failing one still count */
    *dispatched_out += count;
    return -1;
}

static PyObject *
WheelCore_run_until(WheelCore *self, PyObject *arg)
{
    long long deadline;
    if (PyLong_CheckExact(arg)) {
        if (ll_from(arg, &deadline) < 0)
            return NULL;
    }
    else {
        PyObject *coerced = PyObject_CallMethodObjArgs(
            (PyObject *)self, s_as_cycles, arg, s_deadline_word, NULL);
        if (coerced == NULL)
            return NULL;
        int rc = ll_from(coerced, &deadline);
        Py_DECREF(coerced);
        if (rc < 0)
            return NULL;
    }
    if (check_state(self) < 0)
        return NULL;

    PyObject *wheel = self->wheel;
    PyObject *late_wheel = self->wheel_late;
    PyObject *overflow = self->overflow;
    PyObject *sanitizer =
        (self->sanitizer == NULL || self->sanitizer == Py_None)
            ? NULL
            : self->sanitizer;
    /* The pure loop binds these as locals for the whole call; keep them
     * alive across callbacks the same way. */
    Py_INCREF(wheel);
    Py_INCREF(late_wheel);
    Py_INCREF(overflow);
    Py_XINCREF(sanitizer);

    long long dispatched = 0;
    long long pos = self->wheel_pos;
    int failed = 0;

    if (core_refill(self) < 0) {
        failed = 1;
        goto settle;
    }
    long long next_refill = NEVER_LL;
    {
        long long head;
        int has;
        if (overflow_head(overflow, &head, &has) < 0) {
            failed = 1;
            goto settle;
        }
        next_refill = has ? head - WHEEL_SIZE + 1 : NEVER_LL;
    }

    while (pos <= deadline) {
        Py_ssize_t slot = (Py_ssize_t)(pos & WHEEL_MASK);
        PyObject *bucket = PyList_GET_ITEM(wheel, slot);
        if (PyList_GET_SIZE(bucket) == 0 &&
            PyList_GET_SIZE(PyList_GET_ITEM(late_wheel, slot)) == 0) {
            if (self->wheel_count) {
                pos += 1;
                if (pos >= next_refill) {
                    self->wheel_pos = pos;
                    self->horizon = pos + WHEEL_SIZE;
                    if (core_refill(self) < 0) {
                        failed = 1;
                        goto settle;
                    }
                    long long head;
                    int has;
                    if (overflow_head(overflow, &head, &has) < 0) {
                        failed = 1;
                        goto settle;
                    }
                    next_refill = has ? head - WHEEL_SIZE + 1 : NEVER_LL;
                }
                continue;
            }
            long long head;
            int has;
            if (overflow_head(overflow, &head, &has) < 0) {
                failed = 1;
                goto settle;
            }
            if (!has || head > deadline)
                break;
            /* wheel empty: jump straight to the overflow head */
            pos = head;
            self->wheel_pos = pos;
            self->horizon = pos + WHEEL_SIZE;
            if (core_refill(self) < 0) {
                failed = 1;
                goto settle;
            }
            if (overflow_head(overflow, &head, &has) < 0) {
                failed = 1;
                goto settle;
            }
            next_refill = has ? head - WHEEL_SIZE + 1 : NEVER_LL;
            continue;
        }
        /* ---- dispatch every entry at cycle `pos` ---- */
        self->wheel_pos = pos;
        long long horizon = pos + WHEEL_SIZE;
        self->horizon = horizon;
        long long prev = self->now;
        self->now = pos;
        if (dispatch_bucket(self, bucket, pos, horizon, sanitizer,
                            &dispatched, &prev) < 0) {
            failed = 1;
            goto settle;
        }
        self->wheel_count -= PyList_GET_SIZE(bucket);
        if (PyList_SetSlice(bucket, 0, PyList_GET_SIZE(bucket), NULL) < 0) {
            failed = 1;
            goto settle;
        }
        PyObject *late = PyList_GET_ITEM(late_wheel, slot);
        if (PyList_GET_SIZE(late) != 0) {
            /* ---- late phase: slot-swap so zero-delay posts made by
             * late callbacks land in the list being iterated ---- */
            Py_INCREF(late);   /* working reference */
            Py_INCREF(bucket); /* keep alive across the swap */
            Py_INCREF(late);
            PyList_SetItem(wheel, slot, late); /* steals; drops bucket */
            if (dispatch_bucket(self, late, pos, horizon, sanitizer,
                                &dispatched, &prev) < 0) {
                /* mirror pure control flow: the finally block does not
                 * restore the swapped slot on an exception */
                Py_DECREF(late);
                Py_DECREF(bucket);
                failed = 1;
                goto settle;
            }
            self->wheel_count -= PyList_GET_SIZE(late);
            if (PyList_SetSlice(late, 0, PyList_GET_SIZE(late), NULL) < 0) {
                Py_DECREF(late);
                Py_DECREF(bucket);
                failed = 1;
                goto settle;
            }
            PyList_SetItem(wheel, slot, bucket); /* steals; drops late */
            Py_DECREF(late);
        }
        pos += 1;
        /* callbacks may have pushed new far-future work */
        long long head;
        int has;
        if (overflow_head(overflow, &head, &has) < 0) {
            failed = 1;
            goto settle;
        }
        next_refill = has ? head - WHEEL_SIZE + 1 : NEVER_LL;
        if (pos >= next_refill) {
            self->wheel_pos = pos;
            self->horizon = pos + WHEEL_SIZE;
            if (core_refill(self) < 0) {
                failed = 1;
                goto settle;
            }
            if (overflow_head(overflow, &head, &has) < 0) {
                failed = 1;
                goto settle;
            }
            next_refill = has ? head - WHEEL_SIZE + 1 : NEVER_LL;
        }
    }

settle:
    /* the pure loop's finally block */
    self->live -= dispatched;
    self->dispatched += dispatched;
    g_dispatched_total += dispatched;
    Py_DECREF(wheel);
    Py_DECREF(late_wheel);
    Py_DECREF(overflow);
    Py_XDECREF(sanitizer);
    if (failed)
        return NULL;
    if (self->now < deadline)
        self->now = deadline;
    if (self->wheel_pos < deadline) {
        self->wheel_pos = deadline;
        self->horizon = deadline + WHEEL_SIZE;
    }
    Py_RETURN_NONE;
}

/* One index-based bucket walk of run(): mirrors the pure `while index <
 * len(bucket)` loop including the max_events guard.  Returns 0 on
 * success, 1 if the guard tripped (error already set), -1 on error.
 * *index_out is the pure loop's `index` at exit (for the `del
 * bucket[:index]` / wheel_count settlement the caller performs). */
static int
run_bucket(WheelCore *self, PyObject *bucket, long long pos,
           int has_max, long long max_events, PyObject *sanitizer,
           long long *dispatched_io, Py_ssize_t *index_out)
{
    Py_ssize_t index = 0;
    while (index < PyList_GET_SIZE(bucket)) {
        PyObject *entry = PyList_GET_ITEM(bucket, index);
        Py_INCREF(entry);
        int is_tuple = PyTuple_CheckExact(entry);
        int is_list = PyList_CheckExact(entry);
        int is_event = !is_tuple && !is_list;
        if (is_event) {
            PyObject *flag = PyObject_GetAttr(entry, s_cancelled);
            if (flag == NULL)
                goto fail;
            int cancelled = PyObject_IsTrue(flag);
            Py_DECREF(flag);
            if (cancelled < 0)
                goto fail;
            if (cancelled) {
                Py_DECREF(entry);
                index++;
                continue;
            }
        }
        if (has_max && *dispatched_io >= max_events) {
            /* del bucket[:index]; wheel_count -= index; clock at pos */
            if (PyList_SetSlice(bucket, 0, index, NULL) < 0)
                goto fail;
            self->wheel_count -= index;
            self->now = pos;
            PyErr_Format(g_sim_error ? g_sim_error : PyExc_RuntimeError,
                         "exceeded max_events=%lld", max_events);
            Py_DECREF(entry);
            *index_out = index;
            return 1;
        }
        if (sanitizer != NULL) {
            if (sanitizer_on_event(sanitizer, pos, self->now) < 0)
                goto fail;
        }
        self->now = pos;
        if (is_event) {
            if (PyObject_SetAttr(entry, s_fired, Py_True) < 0)
                goto fail;
            PyObject *callback = PyObject_GetAttr(entry, s_callback);
            if (callback == NULL)
                goto fail;
            PyObject *cb_args = PyObject_GetAttr(entry, s_args);
            if (cb_args == NULL) {
                Py_DECREF(callback);
                goto fail;
            }
            int rc = call_callback(callback, cb_args);
            Py_DECREF(callback);
            Py_DECREF(cb_args);
            if (rc < 0)
                goto fail;
            /* Event entries have no kind tag: always a miss */
            self->fastpath_misses += 1;
            g_fp_misses += 1;
        }
        else {
            PyObject *cb = is_tuple ? PyTuple_GET_ITEM(entry, 0)
                                    : PyList_GET_ITEM(entry, 0);
            PyObject *cb_args = is_tuple ? PyTuple_GET_ITEM(entry, 1)
                                         : PyList_GET_ITEM(entry, 1);
            int handled = native_dispatch(self, cb, cb_args);
            if (handled < 0)
                goto fail;
            if (!handled && call_callback(cb, cb_args) < 0)
                goto fail;
            if (is_list) {
                if (chain_continue(self, entry, pos, self->horizon) < 0)
                    goto fail;
            }
        }
        *dispatched_io += 1;
        index++;
        Py_DECREF(entry);
        continue;
    fail:
        Py_DECREF(entry);
        *index_out = index;
        return -1;
    }
    *index_out = index;
    return 0;
}

static PyObject *
WheelCore_run(WheelCore *self, PyObject *args, PyObject *kwargs)
{
    static char *keywords[] = {"max_events", NULL};
    PyObject *max_obj = Py_None;
    if (!PyArg_ParseTupleAndKeywords(args, kwargs, "|O", keywords, &max_obj))
        return NULL;
    int has_max = max_obj != Py_None;
    long long max_events = 0;
    if (has_max && ll_from(max_obj, &max_events) < 0)
        return NULL;
    if (check_state(self) < 0)
        return NULL;

    PyObject *wheel = self->wheel;
    PyObject *late_wheel = self->wheel_late;
    PyObject *overflow = self->overflow;
    PyObject *sanitizer =
        (self->sanitizer == NULL || self->sanitizer == Py_None)
            ? NULL
            : self->sanitizer;
    Py_INCREF(wheel);
    Py_INCREF(late_wheel);
    Py_INCREF(overflow);
    Py_XINCREF(sanitizer);

    long long dispatched = 0;
    long long pos = self->wheel_pos;
    int failed = 0;

    if (core_refill(self) < 0) {
        failed = 1;
        goto settle;
    }
    for (;;) {
        if (self->wheel_count == 0) {
            long long head;
            int has;
            if (overflow_head(overflow, &head, &has) < 0) {
                failed = 1;
                goto settle;
            }
            if (!has)
                break;
            pos = head;
            self->wheel_pos = pos;
            self->horizon = pos + WHEEL_SIZE;
            if (core_refill(self) < 0) {
                failed = 1;
                goto settle;
            }
            continue;
        }
        Py_ssize_t slot = (Py_ssize_t)(pos & WHEEL_MASK);
        PyObject *bucket = PyList_GET_ITEM(wheel, slot);
        if (PyList_GET_SIZE(bucket) == 0 &&
            PyList_GET_SIZE(PyList_GET_ITEM(late_wheel, slot)) == 0) {
            pos += 1;
            long long head;
            int has;
            if (overflow_head(overflow, &head, &has) < 0) {
                failed = 1;
                goto settle;
            }
            if (has && head - WHEEL_SIZE + 1 <= pos) {
                self->wheel_pos = pos;
                self->horizon = pos + WHEEL_SIZE;
                if (core_refill(self) < 0) {
                    failed = 1;
                    goto settle;
                }
            }
            continue;
        }
        self->wheel_pos = pos;
        self->horizon = pos + WHEEL_SIZE;
        Py_ssize_t index = 0;
        int rc = run_bucket(self, bucket, pos, has_max, max_events,
                            sanitizer, &dispatched, &index);
        if (rc != 0) {
            failed = 1;
            goto settle;
        }
        self->wheel_count -= index;
        if (PyList_SetSlice(bucket, 0, PyList_GET_SIZE(bucket), NULL) < 0) {
            failed = 1;
            goto settle;
        }
        PyObject *late = PyList_GET_ITEM(late_wheel, slot);
        if (PyList_GET_SIZE(late) != 0) {
            /* late phase: same slot-swap as run_until */
            Py_INCREF(late);
            Py_INCREF(bucket);
            Py_INCREF(late);
            PyList_SetItem(wheel, slot, late);
            rc = run_bucket(self, late, pos, has_max, max_events,
                            sanitizer, &dispatched, &index);
            if (rc != 0) {
                if (rc == 1) {
                    /* guard trip restores the ordinary slot (pure code
                     * reassigns wheel[pos & mask] = bucket before raising) */
                    PyList_SetItem(wheel, slot, bucket); /* steals */
                    Py_DECREF(late);
                }
                else {
                    Py_DECREF(late);
                    Py_DECREF(bucket);
                }
                failed = 1;
                goto settle;
            }
            self->wheel_count -= index;
            if (PyList_SetSlice(late, 0, PyList_GET_SIZE(late), NULL) < 0) {
                Py_DECREF(late);
                Py_DECREF(bucket);
                failed = 1;
                goto settle;
            }
            PyList_SetItem(wheel, slot, bucket); /* steals; drops late */
            Py_DECREF(late);
        }
        pos += 1;
    }

settle:
    self->live -= dispatched;
    self->dispatched += dispatched;
    g_dispatched_total += dispatched;
    Py_DECREF(wheel);
    Py_DECREF(late_wheel);
    Py_DECREF(overflow);
    Py_XDECREF(sanitizer);
    if (failed)
        return NULL;
    return PyLong_FromLongLong(dispatched);
}

static PyMemberDef WheelCore_members[] = {
    {"_now", T_LONGLONG, offsetof(WheelCore, now), 0,
     "current simulation cycle"},
    {"_seq", T_LONGLONG, offsetof(WheelCore, seq), 0,
     "global insertion sequence counter"},
    {"_wheel_pos", T_LONGLONG, offsetof(WheelCore, wheel_pos), 0,
     "window start cycle"},
    {"_horizon", T_LONGLONG, offsetof(WheelCore, horizon), 0,
     "window end cycle (wheel_pos + 4096)"},
    {"_wheel_count", T_LONGLONG, offsetof(WheelCore, wheel_count), 0,
     "entries sitting in wheel buckets (both phases)"},
    {"_live", T_LONGLONG, offsetof(WheelCore, live), 0,
     "queued entries that will actually fire"},
    {"dispatched", T_LONGLONG, offsetof(WheelCore, dispatched), 0,
     "events dispatched by this engine"},
    {"fastpath_hits", T_LONGLONG, offsetof(WheelCore, fastpath_hits), 0,
     "events executed natively by a registered kind handler"},
    {"fastpath_misses", T_LONGLONG, offsetof(WheelCore, fastpath_misses), 0,
     "events that fell back to the Python callback path"},
    {"_wheel", T_OBJECT, offsetof(WheelCore, wheel), 0,
     "per-cycle FIFO bucket lists"},
    {"_wheel_late", T_OBJECT, offsetof(WheelCore, wheel_late), 0,
     "late-phase bucket lists"},
    {"_overflow", T_OBJECT, offsetof(WheelCore, overflow), 0,
     "(when, seq, entry) heap beyond the window"},
    {"sanitizer", T_OBJECT, offsetof(WheelCore, sanitizer), 0,
     "opt-in runtime invariant checker"},
    {"tracer", T_OBJECT, offsetof(WheelCore, tracer), 0,
     "opt-in request lifecycle recorder"},
    {NULL, 0, 0, 0, NULL},
};

static PyMethodDef WheelCore_methods[] = {
    {"run_until", (PyCFunction)WheelCore_run_until, METH_O,
     "Dispatch events with timestamp <= deadline (compiled)."},
    {"run", (PyCFunction)WheelCore_run, METH_VARARGS | METH_KEYWORDS,
     "Dispatch events until the queue is empty (compiled)."},
    {NULL, NULL, 0, NULL},
};

static int
WheelCore_traverse(WheelCore *self, visitproc visit, void *arg)
{
    Py_VISIT(self->wheel);
    Py_VISIT(self->wheel_late);
    Py_VISIT(self->overflow);
    Py_VISIT(self->sanitizer);
    Py_VISIT(self->tracer);
    return 0;
}

static int
WheelCore_clear(WheelCore *self)
{
    Py_CLEAR(self->wheel);
    Py_CLEAR(self->wheel_late);
    Py_CLEAR(self->overflow);
    Py_CLEAR(self->sanitizer);
    Py_CLEAR(self->tracer);
    return 0;
}

static void
WheelCore_dealloc(WheelCore *self)
{
    PyObject_GC_UnTrack(self);
    WheelCore_clear(self);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyTypeObject WheelCoreType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "_wheelcore.WheelCore",
    .tp_basicsize = sizeof(WheelCore),
    .tp_dealloc = (destructor)WheelCore_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_BASETYPE | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Compiled timing-wheel dispatch core (see repro.accel).",
    .tp_traverse = (traverseproc)WheelCore_traverse,
    .tp_clear = (inquiry)WheelCore_clear,
    .tp_methods = WheelCore_methods,
    .tp_members = WheelCore_members,
    .tp_new = PyType_GenericNew,
};

/* ------------------------------------------------------------------ */
/* controller kernels                                                 */
/* ------------------------------------------------------------------ */

/* Bank.prep_cycles(row), reading the Bank's flattened timing slots. */
static int
bank_prep_cycles(PyObject *bank, PyObject *row_obj, long long *out)
{
    PyObject *open_page = PyObject_GetAttr(bank, s_open_page);
    if (open_page == NULL)
        return -1;
    int is_open = PyObject_IsTrue(open_page);
    Py_DECREF(open_page);
    if (is_open < 0)
        return -1;
    PyObject *which = s_prep_miss;
    if (is_open) {
        PyObject *open_row = PyObject_GetAttr(bank, s_open_row);
        if (open_row == NULL)
            return -1;
        int hit = PyObject_RichCompareBool(open_row, row_obj, Py_EQ);
        Py_DECREF(open_row);
        if (hit < 0)
            return -1;
        if (hit)
            which = s_prep_hit;
    }
    PyObject *prep = PyObject_GetAttr(bank, which);
    if (prep == NULL)
        return -1;
    int rc = ll_from(prep, out);
    Py_DECREF(prep);
    return rc;
}

/* Mirror of MemoryController._ready: requests whose bank is free and
 * whose prep covers the data-bus backlog, in queue order.  Callers
 * guarantee list-typed queue/busy/banks. */
static PyObject *
ready_scan_impl(PyObject *queue, PyObject *busy, PyObject *banks,
                PyObject *uniform_prep, long long bus_backlog, long long now)
{
    PyObject *ready = PyList_New(0);
    if (ready == NULL)
        return NULL;
    int uniform = uniform_prep != Py_None;
    long long uniform_ll = 0;
    if (uniform) {
        if (ll_from(uniform_prep, &uniform_ll) < 0)
            goto fail;
        /* closed page: the bus gate blocks the whole queue or none */
        if (uniform_ll < bus_backlog)
            return ready;
    }
    for (Py_ssize_t i = 0; i < PyList_GET_SIZE(queue); i++) {
        PyObject *req = PyList_GET_ITEM(queue, i);
        PyObject *bank_obj = PyObject_GetAttr(req, s_bank_id);
        if (bank_obj == NULL)
            goto fail;
        long long bank_id;
        int rc = ll_from(bank_obj, &bank_id);
        Py_DECREF(bank_obj);
        if (rc < 0)
            goto fail;
        if (bank_id < 0 || bank_id >= PyList_GET_SIZE(busy)) {
            PyErr_Format(PyExc_IndexError,
                         "request bank_id %lld out of range", bank_id);
            goto fail;
        }
        long long busy_until;
        if (ll_from(PyList_GET_ITEM(busy, (Py_ssize_t)bank_id),
                    &busy_until) < 0)
            goto fail;
        if (busy_until > now)
            continue;
        if (!uniform) {
            PyObject *row_obj = PyObject_GetAttr(req, s_row_id);
            if (row_obj == NULL)
                goto fail;
            long long prep;
            rc = bank_prep_cycles(
                PyList_GET_ITEM(banks, (Py_ssize_t)bank_id), row_obj, &prep);
            Py_DECREF(row_obj);
            if (rc < 0)
                goto fail;
            if (prep < bus_backlog)
                continue;
        }
        if (PyList_Append(ready, req) < 0)
            goto fail;
    }
    return ready;
fail:
    Py_DECREF(ready);
    return NULL;
}

/* ready_scan(queue, busy, banks, uniform_prep, bus_backlog, now) */
static PyObject *
mod_ready_scan(PyObject *module, PyObject *args)
{
    PyObject *queue, *busy, *banks, *uniform_prep;
    long long bus_backlog, now;
    if (!PyArg_ParseTuple(args, "OOOOLL", &queue, &busy, &banks,
                          &uniform_prep, &bus_backlog, &now))
        return NULL;
    if (!PyList_Check(queue) || !PyList_Check(busy) || !PyList_Check(banks)) {
        PyErr_SetString(PyExc_TypeError,
                        "ready_scan expects list queue/busy/banks");
        return NULL;
    }
    return ready_scan_impl(queue, busy, banks, uniform_prep, bus_backlog, now);
}

/* Mirror of _issue_ready's incremental post-pick filters: drop the
 * issued request, everything on its (now busy) bank, and — open page —
 * everything whose prep no longer covers the tightened bus gate.
 * Callers guarantee list-typed ready/banks. */
static PyObject *
filter_ready_impl(PyObject *ready, PyObject *picked, PyObject *banks,
                  PyObject *uniform_prep, long long bus_backlog)
{
    PyObject *picked_bank = PyObject_GetAttr(picked, s_bank_id);
    if (picked_bank == NULL)
        return NULL;
    long long bank_id;
    if (ll_from(picked_bank, &bank_id) < 0) {
        Py_DECREF(picked_bank);
        return NULL;
    }
    Py_DECREF(picked_bank);
    int uniform = uniform_prep != Py_None;
    PyObject *kept = PyList_New(0);
    if (kept == NULL)
        return NULL;
    if (uniform) {
        long long uniform_ll;
        if (ll_from(uniform_prep, &uniform_ll) < 0) {
            Py_DECREF(kept);
            return NULL;
        }
        /* closed page: the tightened bus gate blocks everything or nothing */
        if (uniform_ll < bus_backlog)
            return kept;
    }
    for (Py_ssize_t i = 0; i < PyList_GET_SIZE(ready); i++) {
        PyObject *req = PyList_GET_ITEM(ready, i);
        if (req == picked)
            continue;
        PyObject *bank_obj = PyObject_GetAttr(req, s_bank_id);
        if (bank_obj == NULL)
            goto fail;
        long long req_bank;
        int rc = ll_from(bank_obj, &req_bank);
        Py_DECREF(bank_obj);
        if (rc < 0)
            goto fail;
        if (req_bank == bank_id)
            continue;
        if (!uniform) {
            if (req_bank < 0 || req_bank >= PyList_GET_SIZE(banks)) {
                PyErr_Format(PyExc_IndexError,
                             "request bank_id %lld out of range", req_bank);
                goto fail;
            }
            PyObject *row_obj = PyObject_GetAttr(req, s_row_id);
            if (row_obj == NULL)
                goto fail;
            long long prep;
            rc = bank_prep_cycles(
                PyList_GET_ITEM(banks, (Py_ssize_t)req_bank), row_obj, &prep);
            Py_DECREF(row_obj);
            if (rc < 0)
                goto fail;
            if (prep < bus_backlog)
                continue;
        }
        if (PyList_Append(kept, req) < 0)
            goto fail;
    }
    return kept;
fail:
    Py_DECREF(kept);
    return NULL;
}

/* filter_ready(ready, picked, banks, uniform_prep, bus_backlog) */
static PyObject *
mod_filter_ready(PyObject *module, PyObject *args)
{
    PyObject *ready, *picked, *banks, *uniform_prep;
    long long bus_backlog;
    if (!PyArg_ParseTuple(args, "OOOOL", &ready, &picked, &banks,
                          &uniform_prep, &bus_backlog))
        return NULL;
    if (!PyList_Check(ready) || !PyList_Check(banks)) {
        PyErr_SetString(PyExc_TypeError,
                        "filter_ready expects list ready/banks");
        return NULL;
    }
    return filter_ready_impl(ready, picked, banks, uniform_prep, bus_backlog);
}

/* ------------------------------------------------------------------ */
/* native event fast path                                             */
/*                                                                    */
/* The dominant event callbacks (pacer release chains, controller     */
/* pass tokens and completions, the system's NoC delivery/response    */
/* pumps) are transcribed below as C handlers keyed by "kind": the    */
/* dispatch loops recognize an entry's bound-method callback by       */
/* (function pointer, exact owner class, owner engine == self) and    */
/* run the C twin instead of bouncing into the interpreter.  This is  */
/* a *code* mirror, not a state mirror: handlers read and write the   */
/* same canonical Python attributes the pure methods use, so there    */
/* is no shadow state to sync and checkpoints stay backend-neutral.   */
/* Every mutation, Python-level call (policy/sanitizer/tracer/        */
/* closures), and raised error matches the pure transcription line    */
/* for line; only attribute *read counts* differ, which no program    */
/* can observe.  A handler that meets state outside its vetted shape  */
/* declines before mutating anything and the entry falls back to the  */
/* Python callback path (counted as a fast-path miss).                */
/* ------------------------------------------------------------------ */

/* Instance-dict fast path for attribute access.  The handlers only
 * touch *exact* registered classes (guarded at dispatch), and none of
 * those classes shadow the accessed names with data descriptors, so an
 * instance-dict hit is semantically identical to PyObject_GetAttr at a
 * fraction of the cost.  Slotted objects (Bank, MemoryRequest,
 * ClassStats) have no dict pointer and fall back transparently. */

/* borrowed ref, NULL = not found this way (no error left pending) */
static inline PyObject *
inst_get(PyObject *obj, PyObject *name)
{
    PyObject **dictptr = _PyObject_GetDictPtr(obj);
    if (dictptr == NULL || *dictptr == NULL ||
        !PyDict_CheckExact(*dictptr))
        return NULL;
    PyObject *value = PyDict_GetItemWithError(*dictptr, name);
    if (value == NULL && PyErr_Occurred())
        PyErr_Clear();
    return value;
}

/* new ref; raises like PyObject_GetAttr on a truly missing attribute */
static PyObject *
fast_getattr(PyObject *obj, PyObject *name)
{
    PyObject *value = inst_get(obj, name);
    if (value != NULL) {
        Py_INCREF(value);
        return value;
    }
    return PyObject_GetAttr(obj, name);
}

static int
fast_setattr(PyObject *obj, PyObject *name, PyObject *value)
{
    PyObject **dictptr = _PyObject_GetDictPtr(obj);
    if (dictptr != NULL && *dictptr != NULL &&
        PyDict_CheckExact(*dictptr))
        return PyDict_SetItem(*dictptr, name, value);
    return PyObject_SetAttr(obj, name, value);
}

/* 1 if the owner's instance dict shadows any of the given method
 * names.  Checked before a mirror's first observable mutation: a
 * shadowed component leaves the fast path entirely, so the Python
 * reference path dispatches to the override exactly as pure would.
 * Never leaves an error pending. */
static int
owner_shadows(PyObject *owner, PyObject *const *names, int count)
{
    PyObject **dictptr = _PyObject_GetDictPtr(owner);
    if (dictptr == NULL || *dictptr == NULL ||
        !PyDict_CheckExact(*dictptr))
        return 0;
    PyObject *dict = *dictptr;
    for (int i = 0; i < count; i++) {
        PyObject *hit = PyDict_GetItemWithError(dict, names[i]);
        if (hit != NULL)
            return 1;
        if (PyErr_Occurred())
            PyErr_Clear();
    }
    return 0;
}

static int
get_ll_attr(PyObject *obj, PyObject *name, long long *out)
{
    PyObject *value = inst_get(obj, name);
    if (value != NULL)
        return ll_from(value, out);
    value = PyObject_GetAttr(obj, name);
    if (value == NULL)
        return -1;
    int rc = ll_from(value, out);
    Py_DECREF(value);
    return rc;
}

static int
set_ll_attr(PyObject *obj, PyObject *name, long long value)
{
    PyObject *boxed = PyLong_FromLongLong(value);
    if (boxed == NULL)
        return -1;
    int rc = fast_setattr(obj, name, boxed);
    Py_DECREF(boxed);
    return rc;
}

static int
add_ll_attr(PyObject *obj, PyObject *name, long long delta)
{
    long long value;
    if (get_ll_attr(obj, name, &value) < 0)
        return -1;
    return set_ll_attr(obj, name, value + delta);
}

/* obj.<name> truthiness: -1 error, else 0/1 */
static int
truthy_attr(PyObject *obj, PyObject *name)
{
    PyObject *value = inst_get(obj, name);
    if (value != NULL)
        return PyObject_IsTrue(value);
    value = PyObject_GetAttr(obj, name);
    if (value == NULL)
        return -1;
    int truth = PyObject_IsTrue(value);
    Py_DECREF(value);
    return truth;
}

/* obj.<method>(arg), result discarded; 0/-1 */
static int
call_1(PyObject *obj, PyObject *method, PyObject *arg)
{
    PyObject *result = PyObject_CallMethodObjArgs(obj, method, arg, NULL);
    if (result == NULL)
        return -1;
    Py_DECREF(result);
    return 0;
}

/* bisect.bisect_right / bisect_left over a list of ints; -1 on error */
static Py_ssize_t
bisect_right_ll(PyObject *list, long long value)
{
    Py_ssize_t lo = 0, hi = PyList_GET_SIZE(list);
    while (lo < hi) {
        Py_ssize_t mid = (lo + hi) >> 1;
        long long item;
        if (ll_from(PyList_GET_ITEM(list, mid), &item) < 0)
            return -1;
        if (value < item)
            hi = mid;
        else
            lo = mid + 1;
    }
    return lo;
}

static Py_ssize_t
bisect_left_ll(PyObject *list, long long value)
{
    Py_ssize_t lo = 0, hi = PyList_GET_SIZE(list);
    while (lo < hi) {
        Py_ssize_t mid = (lo + hi) >> 1;
        long long item;
        if (ll_from(PyList_GET_ITEM(list, mid), &item) < 0)
            return -1;
        if (item < value)
            lo = mid + 1;
        else
            hi = mid;
    }
    return lo;
}

/* Engine.post_at's body for a pre-validated int `when` >= _now and a
 * ready-made entry (borrowed).  Also the exact tail of post_chain_at
 * and of the inlined wheel inserts in controller.py: same end state
 * (live/wheel_count/seq, bucket append vs heap push). */
static int
core_post_entry(WheelCore *self, long long when, PyObject *entry)
{
    self->live += 1;
    if (when < self->horizon) {
        PyObject *bucket =
            PyList_GET_ITEM(self->wheel, (Py_ssize_t)(when & WHEEL_MASK));
        if (!PyList_Check(bucket)) {
            PyErr_SetString(PyExc_TypeError, "wheel bucket is not a list");
            return -1;
        }
        if (PyList_Append(bucket, entry) < 0)
            return -1;
        self->wheel_count += 1;
        return 0;
    }
    long long seq = self->seq;
    self->seq = seq + 1;
    PyObject *when_obj = PyLong_FromLongLong(when);
    PyObject *seq_obj = PyLong_FromLongLong(seq);
    PyObject *item = NULL;
    if (when_obj != NULL && seq_obj != NULL)
        item = PyTuple_Pack(3, when_obj, seq_obj, entry);
    Py_XDECREF(when_obj);
    Py_XDECREF(seq_obj);
    if (item == NULL)
        return -1;
    int rc = heap_push(self->overflow, item);
    Py_DECREF(item);
    return rc;
}

static int
core_post_call(WheelCore *self, long long when, PyObject *callback,
               PyObject *args)
{
    PyObject *entry = PyTuple_Pack(2, callback, args);
    if (entry == NULL)
        return -1;
    int rc = core_post_entry(self, when, entry);
    Py_DECREF(entry);
    return rc;
}

/* Engine.post_late_at's body for an int `when` >= _now. */
static int
core_post_late(WheelCore *self, long long when, PyObject *callback,
               PyObject *args)
{
    if (when >= self->horizon) {
        PyErr_Format(g_sim_error ? g_sim_error : PyExc_RuntimeError,
                     "late post at cycle %lld is beyond the wheel horizon "
                     "%lld; late entries must be near-term",
                     when, self->horizon);
        return -1;
    }
    PyObject *entry = PyTuple_Pack(2, callback, args);
    if (entry == NULL)
        return -1;
    self->live += 1;
    PyObject *bucket =
        PyList_GET_ITEM(self->wheel_late, (Py_ssize_t)(when & WHEEL_MASK));
    if (!PyList_Check(bucket)) {
        Py_DECREF(entry);
        PyErr_SetString(PyExc_TypeError, "late bucket is not a list");
        return -1;
    }
    int rc = PyList_Append(bucket, entry);
    Py_DECREF(entry);
    if (rc < 0)
        return -1;
    self->wheel_count += 1;
    return 0;
}

/* ---- pacer: Pacer._release_head(token) + the _release_now drain ---- */

static int
kind_pacer_release_head(WheelCore *self, PyObject *owner, PyObject *cb,
                        PyObject *args)
{
    if (PyTuple_GET_SIZE(args) != 1 ||
        !PyLong_CheckExact(PyTuple_GET_ITEM(args, 0)))
        return 0;
    long long token;
    if (ll_from(PyTuple_GET_ITEM(args, 0), &token) < 0)
        return -1;
    if (owner_shadows(owner, g_shadow_pacer, g_shadow_pacer_n))
        return 0;
    /* decline-before-mutation: the blocked queue must be an exact deque
     * (popleft below is a concrete method call on it) */
    PyObject *blocked = fast_getattr(owner, s_blocked);
    if (blocked == NULL) {
        PyErr_Clear();
        return 0;
    }
    if ((PyObject *)Py_TYPE(blocked) != g_cls_deque) {
        Py_DECREF(blocked);
        return 0;
    }
    long long release_token;
    if (get_ll_attr(owner, s_release_token, &release_token) < 0) {
        Py_DECREF(blocked);
        PyErr_Clear();
        return 0;
    }
    if (token != release_token) {
        Py_DECREF(blocked);
        return 1; /* superseded: a handled no-op, exactly like pure */
    }
    /* _release_now: locals bound exactly where the pure kernel binds */
    long long den, period, burst;
    if (get_ll_attr(owner, s_den, &den) < 0 ||
        get_ll_attr(owner, s_period_num, &period) < 0 ||
        get_ll_attr(owner, s_burst, &burst) < 0)
        goto fail;
    long long burst_span = burst * period;
    long long now_scaled = self->now * den;
    for (;;) {
        Py_ssize_t n = PyObject_Size(blocked);
        if (n < 0)
            goto fail;
        if (n == 0)
            break;
        /* _cnext_scaled is re-read per iteration: release() can
         * re-enter charge/uncharge */
        long long cnext;
        if (get_ll_attr(owner, s_cnext_scaled, &cnext) < 0)
            goto fail;
        if (cnext > now_scaled)
            break;
        PyObject *head = PyObject_CallMethodObjArgs(blocked, s_popleft, NULL);
        if (head == NULL)
            goto fail;
        if (!PyTuple_Check(head) || PyTuple_GET_SIZE(head) != 2) {
            Py_DECREF(head);
            PyErr_SetString(PyExc_TypeError,
                            "pacer blocked entry is not (req, release)");
            goto fail;
        }
        PyObject *release = PyTuple_GET_ITEM(head, 1);
        Py_INCREF(release);
        Py_DECREF(head);
        long long floor_v = now_scaled - burst_span;
        if (cnext < floor_v)
            cnext = floor_v;
        if (set_ll_attr(owner, s_cnext_scaled, cnext + period) < 0 ||
            add_ll_attr(owner, s_released, 1) < 0) {
            Py_DECREF(release);
            goto fail;
        }
        PyObject *result = PyObject_CallNoArgs(release);
        Py_DECREF(release);
        if (result == NULL)
            goto fail;
        Py_DECREF(result);
    }
    {
        Py_ssize_t n = PyObject_Size(blocked);
        if (n < 0)
            goto fail;
        if (n > 0) {
            long long next_token;
            if (get_ll_attr(owner, s_release_token, &next_token) < 0)
                goto fail;
            next_token += 1;
            if (set_ll_attr(owner, s_release_token, next_token) < 0)
                goto fail;
            /* _release_time(): max(engine._now, ceil(cnext / den)) */
            long long num;
            if (get_ll_attr(owner, s_cnext_scaled, &num) < 0)
                goto fail;
            long long when =
                num >= 0 ? (num + den - 1) / den : -((-num) / den);
            if (when < self->now)
                when = self->now;
            PyObject *token_obj = PyLong_FromLongLong(next_token);
            if (token_obj == NULL)
                goto fail;
            PyObject *rearm_args = PyTuple_Pack(1, token_obj);
            Py_DECREF(token_obj);
            if (rearm_args == NULL)
                goto fail;
            /* re-arm with the dispatched bound method: same callable the
             * pure path would rebuild from self._release_head */
            int rc = core_post_call(self, when, cb, rearm_args);
            Py_DECREF(rearm_args);
            if (rc < 0)
                goto fail;
        }
    }
    Py_DECREF(blocked);
    return 1;
fail:
    Py_DECREF(blocked);
    return -1;
}

/* ---- stats: Stats.record_completion, with a Python fallback ------- */

/* Mirror of Stats.record_completion(req).  Falls back to calling the
 * Python method (not declining the whole event) when the Stats object
 * is subclassed, latency sampling is on, or a container is not the
 * exact type the transcription indexes — record_completion is an
 * internal call inside _retire, so delegating it keeps the enclosing
 * native handler on the fast path. */
static int
stats_record_completion(PyObject *stats, PyObject *req)
{
    if ((PyObject *)Py_TYPE(stats) != g_cls_stats)
        return call_1(stats, s_record_completion, req);
    int sampling = truthy_attr(stats, s_sample_latencies);
    if (sampling < 0)
        return -1;
    if (sampling)
        return call_1(stats, s_record_completion, req);
    PyObject *classes = fast_getattr(stats, s_classes);
    if (classes == NULL)
        return -1;
    PyObject *epoch = fast_getattr(stats, s_epoch_bytes);
    if (epoch == NULL) {
        Py_DECREF(classes);
        return -1;
    }
    if (!PyDict_CheckExact(classes) || !PyDict_CheckExact(epoch)) {
        Py_DECREF(classes);
        Py_DECREF(epoch);
        return call_1(stats, s_record_completion, req);
    }
    PyObject *qos_id = NULL, *cls = NULL;
    qos_id = PyObject_GetAttr(req, s_qos_id);
    if (qos_id == NULL)
        goto fail;
    cls = PyDict_GetItemWithError(classes, qos_id);
    if (cls == NULL) {
        if (PyErr_Occurred())
            goto fail;
        cls = PyObject_CallFunctionObjArgs(g_cls_class_stats, qos_id, NULL);
        if (cls == NULL)
            goto fail;
        if (PyDict_SetItem(classes, qos_id, cls) < 0)
            goto fail;
    } else {
        Py_INCREF(cls);
        if ((PyObject *)Py_TYPE(cls) != g_cls_class_stats) {
            /* subclassed per-class stats: let Python handle everything */
            Py_DECREF(cls);
            Py_DECREF(classes);
            Py_DECREF(epoch);
            Py_DECREF(qos_id);
            return call_1(stats, s_record_completion, req);
        }
    }
    long long size;
    if (get_ll_attr(req, s_size, &size) < 0)
        goto fail;
    int is_read = truthy_attr(req, s_is_read);
    if (is_read < 0)
        goto fail;
    if (is_read) {
        long long completed, created;
        if (add_ll_attr(cls, s_bytes_read, size) < 0 ||
            add_ll_attr(cls, s_reads_completed, 1) < 0 ||
            get_ll_attr(req, s_completed_at, &completed) < 0 ||
            get_ll_attr(req, s_created_at, &created) < 0)
            goto fail;
        long long latency = completed - created;
        long long latency_max;
        if (add_ll_attr(cls, s_read_latency_sum, latency) < 0 ||
            get_ll_attr(cls, s_read_latency_max, &latency_max) < 0)
            goto fail;
        if (latency > latency_max &&
            set_ll_attr(cls, s_read_latency_max, latency) < 0)
            goto fail;
        long long released, arrived, issued;
        if (get_ll_attr(req, s_released_at, &released) < 0 ||
            get_ll_attr(req, s_arrived_mc_at, &arrived) < 0 ||
            get_ll_attr(req, s_issued_at, &issued) < 0)
            goto fail;
        if (released >= 0 && arrived >= 0 && issued >= 0) {
            if (add_ll_attr(cls, s_reads_attributed, 1) < 0 ||
                add_ll_attr(cls, s_stage_pacer_sum, released - created) < 0 ||
                add_ll_attr(cls, s_stage_noc_sum, arrived - released) < 0 ||
                add_ll_attr(cls, s_stage_queue_sum, issued - arrived) < 0 ||
                add_ll_attr(cls, s_stage_service_sum,
                            completed - issued) < 0)
                goto fail;
        } else if (add_ll_attr(cls, s_reads_unattributed, 1) < 0) {
            goto fail;
        }
    } else {
        if (add_ll_attr(cls, s_bytes_written, size) < 0 ||
            add_ll_attr(cls, s_writes_completed, 1) < 0)
            goto fail;
    }
    {
        long long base = 0;
        PyObject *prior = PyDict_GetItemWithError(epoch, qos_id);
        if (prior == NULL) {
            if (PyErr_Occurred())
                goto fail;
        } else if (ll_from(prior, &base) < 0) {
            goto fail;
        }
        PyObject *total = PyLong_FromLongLong(base + size);
        if (total == NULL)
            goto fail;
        int rc = PyDict_SetItem(epoch, qos_id, total);
        Py_DECREF(total);
        if (rc < 0)
            goto fail;
    }
    Py_DECREF(cls);
    Py_DECREF(classes);
    Py_DECREF(epoch);
    Py_DECREF(qos_id);
    return 0;
fail:
    Py_XDECREF(cls);
    Py_DECREF(classes);
    Py_DECREF(epoch);
    Py_XDECREF(qos_id);
    return -1;
}

/* ---- controller: the _run_pass/_issue_ready/_complete* family ----- */

/* Vetted controller containers, fetched once per handled event.  All
 * refs owned; ctrl_state_clear releases them. */
typedef struct {
    PyObject *read_queue;
    PyObject *write_queue;
    PyObject *bank_busy;
    PyObject *busy_times;
    PyObject *space_listeners;
    PyObject *banks;
    PyObject *bus;
    PyObject *uniform_prep; /* None or exact int */
    PyObject *fused;        /* None or exact dict */
} CtrlState;

static void
ctrl_state_clear(CtrlState *st)
{
    Py_CLEAR(st->read_queue);
    Py_CLEAR(st->write_queue);
    Py_CLEAR(st->bank_busy);
    Py_CLEAR(st->busy_times);
    Py_CLEAR(st->space_listeners);
    Py_CLEAR(st->banks);
    Py_CLEAR(st->bus);
    Py_CLEAR(st->uniform_prep);
    Py_CLEAR(st->fused);
}

/* 1 = state has the exact shapes the handlers index, 0 = decline
 * (fall back to Python before anything mutated), -1 never raises. */
static int
ctrl_preflight(PyObject *owner, CtrlState *st)
{
    memset(st, 0, sizeof(*st));
#define NEED_EXACT_LIST(slot, sym)                                        \
    do {                                                                  \
        st->slot = fast_getattr(owner, sym);                          \
        if (st->slot == NULL) {                                           \
            PyErr_Clear();                                                \
            goto decline;                                                 \
        }                                                                 \
        if (!PyList_CheckExact(st->slot))                                 \
            goto decline;                                                 \
    } while (0)
    NEED_EXACT_LIST(read_queue, s_read_queue);
    NEED_EXACT_LIST(write_queue, s_write_queue);
    NEED_EXACT_LIST(bank_busy, s_bank_busy);
    NEED_EXACT_LIST(busy_times, s_busy_times);
    NEED_EXACT_LIST(space_listeners, s_space_listeners);
    NEED_EXACT_LIST(banks, s_banks);
#undef NEED_EXACT_LIST
    /* banks are NOT scanned here: ctrl_issue checks the one picked
     * bank's exact class and delegates exotic banks to the Python
     * _issue method, so an O(banks) vet per pass is unnecessary. */
    st->bus = fast_getattr(owner, s_bus);
    if (st->bus == NULL) {
        PyErr_Clear();
        goto decline;
    }
    if ((PyObject *)Py_TYPE(st->bus) != g_cls_databus)
        goto decline;
    st->uniform_prep = fast_getattr(owner, s_uniform_prep);
    if (st->uniform_prep == NULL) {
        PyErr_Clear();
        goto decline;
    }
    if (st->uniform_prep != Py_None &&
        !PyLong_CheckExact(st->uniform_prep))
        goto decline;
    st->fused = fast_getattr(owner, s_fused);
    if (st->fused == NULL) {
        PyErr_Clear();
        goto decline;
    }
    if (st->fused != Py_None && !PyDict_CheckExact(st->fused))
        goto decline;
    return 1;
decline:
    ctrl_state_clear(st);
    return 0;
}

/* try_enqueue only ever touches the two request queues, so its vetting
 * is just those (the full preflight would scan seven containers per
 * admitted request for nothing). */
static int
ctrl_preflight_queues(PyObject *owner, CtrlState *st)
{
    memset(st, 0, sizeof(*st));
    st->read_queue = fast_getattr(owner, s_read_queue);
    if (st->read_queue == NULL) {
        PyErr_Clear();
        return 0;
    }
    st->write_queue = fast_getattr(owner, s_write_queue);
    if (st->write_queue == NULL) {
        PyErr_Clear();
        goto decline;
    }
    if (!PyList_CheckExact(st->read_queue) ||
        !PyList_CheckExact(st->write_queue))
        goto decline;
    return 1;
decline:
    ctrl_state_clear(st);
    return 0;
}

/* The arm tail shared by _request_pass and _schedule_wakeup: post
 * (self._run_pass, (token,)) at `when` (wheel insert or overflow). */
static int
ctrl_arm_pass(WheelCore *self, PyObject *owner, long long when,
              long long token)
{
    PyObject *run_pass = g_fn_run_pass != NULL
                             ? PyMethod_New(g_fn_run_pass, owner)
                             : PyObject_GetAttr(owner, s_run_pass_name);
    if (run_pass == NULL)
        return -1;
    PyObject *token_obj = PyLong_FromLongLong(token);
    if (token_obj == NULL) {
        Py_DECREF(run_pass);
        return -1;
    }
    PyObject *args = PyTuple_Pack(1, token_obj);
    Py_DECREF(token_obj);
    if (args == NULL) {
        Py_DECREF(run_pass);
        return -1;
    }
    int rc = core_post_call(self, when, run_pass, args);
    Py_DECREF(args);
    Py_DECREF(run_pass);
    return rc;
}

/* MemoryController._request_pass(when): coalesce to the earliest pass */
static int
ctrl_request_pass(WheelCore *self, PyObject *owner, long long when)
{
    PyObject *pass_at = fast_getattr(owner, s_pass_at);
    if (pass_at == NULL)
        return -1;
    if (pass_at != Py_None) {
        long long armed;
        int rc = ll_from(pass_at, &armed);
        Py_DECREF(pass_at);
        if (rc < 0)
            return -1;
        if (armed <= when)
            return 0;
    } else {
        Py_DECREF(pass_at);
    }
    if (set_ll_attr(owner, s_pass_at, when) < 0)
        return -1;
    long long token;
    if (get_ll_attr(owner, s_pass_token, &token) < 0)
        return -1;
    token += 1;
    if (set_ll_attr(owner, s_pass_token, token) < 0)
        return -1;
    return ctrl_arm_pass(self, owner, when, token);
}

/* defined in the System section / after the kind table */
static int sys_on_mc_space_native(WheelCore *self, PyObject *owner,
                                  PyObject *mc_id_obj, long long mc_id);
static void kind_count_sync_hit(int idx);
#define KIND_IDX_ON_MC_SPACE 8
#define KIND_IDX_POLICY_ON_ACCEPT 9
#define KIND_IDX_POLICY_PICK 10

/* MemoryController._notify_space(): synchronous listener fan-out.  A
 * listener that is the registered System._on_mc_space bound to the
 * exact System on this engine runs natively; anything else gets the
 * ordinary Python call. */
static int
ctrl_notify_space(WheelCore *self, PyObject *owner, CtrlState *st)
{
    PyObject *mc_id = fast_getattr(owner, s_mc_id);
    if (mc_id == NULL)
        return -1;
    long long mc_ll = -1;
    int mc_ok = PyLong_CheckExact(mc_id) && ll_from(mc_id, &mc_ll) == 0;
    if (!mc_ok)
        PyErr_Clear();
    /* size re-read per step, like a list iterator over a live list */
    for (Py_ssize_t i = 0; i < PyList_GET_SIZE(st->space_listeners); i++) {
        PyObject *listener = PyList_GET_ITEM(st->space_listeners, i);
        if (mc_ok && g_fn_on_mc_space != NULL && PyMethod_Check(listener) &&
            PyMethod_GET_FUNCTION(listener) == g_fn_on_mc_space) {
            PyObject *sysobj = PyMethod_GET_SELF(listener);
            if (sysobj != NULL &&
                (PyObject *)Py_TYPE(sysobj) == g_cls_system &&
                inst_get(sysobj, s_engine_pub) == (PyObject *)self) {
                Py_INCREF(sysobj);
                int rc = sys_on_mc_space_native(self, sysobj, mc_id, mc_ll);
                Py_DECREF(sysobj);
                if (rc < 0) {
                    Py_DECREF(mc_id);
                    return -1;
                }
                if (rc == 1) {
                    kind_count_sync_hit(KIND_IDX_ON_MC_SPACE);
                    continue;
                }
                /* rc == 0: shapes were off, fall through to Python */
            }
        }
        Py_INCREF(listener);
        PyObject *result =
            PyObject_CallFunctionObjArgs(listener, mc_id, NULL);
        Py_DECREF(listener);
        if (result == NULL) {
            Py_DECREF(mc_id);
            return -1;
        }
        Py_DECREF(result);
    }
    Py_DECREF(mc_id);
    return 0;
}

/* ---- PABST priority arbiter (core/arbiter.py), mirrored for the
 * exact PriorityArbiter class.  These are synchronous policy calls,
 * not wheel events; the C call sites recognize the exact class and
 * transcribe, falling back to the Python methods otherwise. ------- */

/* schedulers.oldest_first: min by (arrived_mc_at, req_id).  Returns a
 * borrowed ref; *ok = 0 means a shape surprise (caller falls back). */
static PyObject *
arb_oldest_first(PyObject *cands, int *ok)
{
    Py_ssize_t n = PyList_GET_SIZE(cands);
    PyObject *best = PyList_GET_ITEM(cands, 0);
    long long best_arrived, best_id;
    if (get_ll_attr(best, s_arrived_mc_at, &best_arrived) < 0 ||
        get_ll_attr(best, s_req_id, &best_id) < 0) {
        PyErr_Clear();
        *ok = 0;
        return NULL;
    }
    for (Py_ssize_t i = 0; i < n; i++) {
        PyObject *req = PyList_GET_ITEM(cands, i);
        long long arrived, req_id;
        if (get_ll_attr(req, s_arrived_mc_at, &arrived) < 0 ||
            get_ll_attr(req, s_req_id, &req_id) < 0) {
            PyErr_Clear();
            *ok = 0;
            return NULL;
        }
        if (arrived > best_arrived)
            continue;
        if (arrived == best_arrived && req_id >= best_id)
            continue;
        best = req;
        best_arrived = arrived;
        best_id = req_id;
    }
    *ok = 1;
    return best;
}

/* arbiter._earliest_deadline: min by (virtual_deadline, arrived_mc_at,
 * req_id), same contract as arb_oldest_first. */
static PyObject *
arb_earliest_deadline(PyObject *cands, int *ok)
{
    Py_ssize_t n = PyList_GET_SIZE(cands);
    PyObject *best = PyList_GET_ITEM(cands, 0);
    long long best_deadline, best_arrived, best_id;
    if (get_ll_attr(best, s_virtual_deadline, &best_deadline) < 0 ||
        get_ll_attr(best, s_arrived_mc_at, &best_arrived) < 0 ||
        get_ll_attr(best, s_req_id, &best_id) < 0) {
        PyErr_Clear();
        *ok = 0;
        return NULL;
    }
    for (Py_ssize_t i = 0; i < n; i++) {
        PyObject *req = PyList_GET_ITEM(cands, i);
        long long deadline, arrived, req_id;
        if (get_ll_attr(req, s_virtual_deadline, &deadline) < 0 ||
            get_ll_attr(req, s_arrived_mc_at, &arrived) < 0 ||
            get_ll_attr(req, s_req_id, &req_id) < 0) {
            PyErr_Clear();
            *ok = 0;
            return NULL;
        }
        if (deadline > best_deadline)
            continue;
        if (deadline == best_deadline) {
            if (arrived > best_arrived)
                continue;
            if (arrived == best_arrived && req_id >= best_id)
                continue;
        }
        best = req;
        best_deadline = deadline;
        best_arrived = arrived;
        best_id = req_id;
    }
    *ok = 1;
    return best;
}

/* PriorityArbiter.pick(candidates, banks, now): 1 = picked (*out new
 * ref), 0 = not attempted (caller calls the Python method), -1 error.
 * Only the final _last_picked_deadline update mutates, so every
 * earlier surprise can still fall back. */
static int
arb_pick_native(PyObject *policy, PyObject *pool, PyObject *banks,
                PyObject **out)
{
    if (owner_shadows(policy, g_shadow_arb, g_shadow_arb_n))
        return 0;
    if (!PyList_CheckExact(pool) || PyList_GET_SIZE(pool) == 0)
        return 0;
    PyObject *first = PyList_GET_ITEM(pool, 0);
    int is_read = truthy_attr(first, s_is_read);
    if (is_read < 0) {
        PyErr_Clear();
        return 0;
    }
    int ok;
    if (!is_read) {
        /* writes: arrival order, no arbiter state touched */
        PyObject *best = arb_oldest_first(pool, &ok);
        if (!ok)
            return 0;
        Py_INCREF(best);
        *out = best;
        return 1;
    }
    int row_hits_first = truthy_attr(policy, s_row_hits_first);
    if (row_hits_first < 0) {
        PyErr_Clear();
        return 0;
    }
    if (row_hits_first) {
        if (!PyList_CheckExact(banks) || PyList_GET_SIZE(banks) == 0)
            return 0;
        int open_page =
            truthy_attr(PyList_GET_ITEM(banks, 0), s_open_page);
        if (open_page < 0) {
            PyErr_Clear();
            return 0;
        }
        if (open_page)
            return 0; /* open-page row-hit scan: Python handles it */
    }
    PyObject *best;
    if (PyList_GET_SIZE(pool) > 1) {
        best = arb_earliest_deadline(pool, &ok);
        if (!ok)
            return 0;
    } else {
        best = first;
    }
    long long deadline, last;
    if (get_ll_attr(best, s_virtual_deadline, &deadline) < 0 ||
        get_ll_attr(policy, s_last_picked_deadline, &last) < 0) {
        PyErr_Clear();
        return 0;
    }
    if (deadline > last &&
        set_ll_attr(policy, s_last_picked_deadline, deadline) < 0)
        return -1;
    Py_INCREF(best);
    *out = best;
    return 1;
}

/* PriorityArbiter.on_accept(req, now): 1 = done, 0 = not attempted,
 * -1 = error.  Vetting (registry/_classes/_clocks shapes) completes
 * before the first mutation. */
static int
arb_on_accept_native(PyObject *policy, PyObject *req)
{
    if (owner_shadows(policy, g_shadow_arb, g_shadow_arb_n))
        return 0;
    int is_read = truthy_attr(req, s_is_read);
    if (is_read < 0) {
        PyErr_Clear();
        return 0;
    }
    if (!is_read)
        return 1; /* pure returns immediately for writes */
    PyObject *registry = fast_getattr(policy, s_registry);
    if (registry == NULL) {
        PyErr_Clear();
        return 0;
    }
    PyObject *classes = fast_getattr(registry, s_qos_classes);
    Py_DECREF(registry);
    if (classes == NULL) {
        PyErr_Clear();
        return 0;
    }
    PyObject *clocks = fast_getattr(policy, s_clocks);
    if (clocks == NULL) {
        PyErr_Clear();
        Py_DECREF(classes);
        return 0;
    }
    if (!PyDict_CheckExact(classes) || !PyDict_CheckExact(clocks))
        goto not_attempted;
    {
        PyObject *qos_id = PyObject_GetAttr(req, s_qos_id);
        if (qos_id == NULL)
            goto fail;
        PyObject *entry = PyDict_GetItemWithError(classes, qos_id);
        if (entry == NULL) {
            if (PyErr_Occurred()) {
                Py_DECREF(qos_id);
                goto fail;
            }
            /* mirror QoSRegistry.get's message exactly */
            PyErr_Format(PyExc_KeyError, "QoS class %S is not defined",
                         qos_id);
            Py_DECREF(qos_id);
            goto fail;
        }
        long long stride;
        if (get_ll_attr(entry, s_stride, &stride) < 0) {
            PyErr_Clear();
            Py_DECREF(qos_id);
            goto not_attempted;
        }
        long long clock = 0;
        PyObject *current = PyDict_GetItemWithError(clocks, qos_id);
        if (current == NULL && PyErr_Occurred()) {
            Py_DECREF(qos_id);
            goto fail;
        }
        if (current != NULL && ll_from(current, &clock) < 0) {
            PyErr_Clear();
            Py_DECREF(qos_id);
            goto not_attempted;
        }
        clock += stride;
        long long last, slack;
        if (get_ll_attr(policy, s_last_picked_deadline, &last) < 0 ||
            get_ll_attr(policy, s_slack, &slack) < 0) {
            PyErr_Clear();
            Py_DECREF(qos_id);
            goto not_attempted;
        }
        int capped = clock < last - slack;
        if (capped) {
            clock = last - slack;
            if (add_ll_attr(policy, s_capped_deadlines, 1) < 0) {
                Py_DECREF(qos_id);
                goto fail;
            }
        }
        PyObject *boxed = PyLong_FromLongLong(clock);
        if (boxed == NULL) {
            Py_DECREF(qos_id);
            goto fail;
        }
        int rc = PyDict_SetItem(clocks, qos_id, boxed) < 0 ||
                 PyObject_SetAttr(req, s_virtual_deadline, boxed) < 0;
        Py_DECREF(boxed);
        Py_DECREF(qos_id);
        if (rc)
            goto fail;
    }
    Py_DECREF(classes);
    Py_DECREF(clocks);
    return 1;
not_attempted:
    Py_DECREF(classes);
    Py_DECREF(clocks);
    return 0;
fail:
    Py_DECREF(classes);
    Py_DECREF(clocks);
    return -1;
}

/* MemoryController._schedule_wakeup(now): re-arm at the next bank-free
 * or bus-gate-open time. */
static int
ctrl_schedule_wakeup(WheelCore *self, PyObject *owner, CtrlState *st)
{
    if (PyList_GET_SIZE(st->read_queue) == 0 &&
        PyList_GET_SIZE(st->write_queue) == 0)
        return 0;
    long long now = self->now;
    PyObject *times = st->busy_times;
    if (PyList_GET_SIZE(times)) {
        Py_ssize_t cut = bisect_right_ll(times, now);
        if (cut < 0)
            return -1;
        if (cut && PyList_SetSlice(times, 0, cut, NULL) < 0)
            return -1;
    }
    long long wake = FAR_LL;
    if (PyList_GET_SIZE(times)) {
        if (ll_from(PyList_GET_ITEM(times, 0), &wake) < 0)
            return -1;
    }
    long long free_at, min_prep;
    if (get_ll_attr(st->bus, s_free_at, &free_at) < 0 ||
        get_ll_attr(owner, s_min_prep, &min_prep) < 0)
        return -1;
    long long bus_gate = free_at - min_prep;
    if (now < bus_gate && bus_gate < wake)
        wake = bus_gate;
    if (wake == FAR_LL)
        return 0;
    /* _run_pass cleared _pass_at, so arm unconditionally (inlined
     * _request_pass without the coalescing early-out) */
    if (set_ll_attr(owner, s_pass_at, wake) < 0)
        return -1;
    long long token;
    if (get_ll_attr(owner, s_pass_token, &token) < 0)
        return -1;
    token += 1;
    if (set_ll_attr(owner, s_pass_token, token) < 0)
        return -1;
    return ctrl_arm_pass(self, owner, wake, token);
}

/* controller.try_enqueue(req) through the ordinary Python call */
static int
try_enqueue_python(PyObject *controller, PyObject *req, int *accepted)
{
    PyObject *result =
        PyObject_CallMethodObjArgs(controller, s_try_enqueue, req, NULL);
    if (result == NULL)
        return -1;
    int truth = PyObject_IsTrue(result);
    Py_DECREF(result);
    if (truth < 0)
        return -1;
    *accepted = truth;
    return 0;
}

/* Native transcription of MemoryController.try_enqueue(req).  The
 * caller has verified the controller's exact class and engine; the
 * CtrlState is this controller's own vetted preflight. */
static int
ctrl_try_enqueue_native(WheelCore *self, PyObject *owner, CtrlState *st,
                        PyObject *req, int *accepted)
{
    long long now = self->now;
    int is_write = truthy_attr(req, s_is_memory_write);
    if (is_write < 0)
        return -1;
    PyObject *target;
    if (is_write) {
        long long capacity;
        if (get_ll_attr(owner, s_write_capacity, &capacity) < 0)
            return -1;
        if (PyList_GET_SIZE(st->write_queue) >= capacity) {
            PyObject *stats = fast_getattr(owner, s_stats_attr);
            if (stats == NULL)
                return -1;
            int rc = add_ll_attr(owner, s_rejects, 1) < 0 ||
                     add_ll_attr(stats, s_requests_rejected, 1) < 0;
            Py_DECREF(stats);
            if (rc)
                return -1;
            *accepted = 0;
            return 0;
        }
        target = st->write_queue;
        if (add_ll_attr(owner, s_writes_accepted, 1) < 0)
            return -1;
    } else {
        long long capacity;
        if (get_ll_attr(owner, s_read_capacity, &capacity) < 0)
            return -1;
        if (PyList_GET_SIZE(st->read_queue) >= capacity) {
            PyObject *stats = fast_getattr(owner, s_stats_attr);
            if (stats == NULL)
                return -1;
            int rc = add_ll_attr(owner, s_rejects, 1) < 0 ||
                     add_ll_attr(stats, s_requests_rejected, 1) < 0;
            Py_DECREF(stats);
            if (rc)
                return -1;
            *accepted = 0;
            return 0;
        }
        target = st->read_queue;
        /* inlined _update_occupancy() before the append below */
        long long last;
        if (get_ll_attr(owner, s_occ_last_update, &last) < 0)
            return -1;
        if (add_ll_attr(owner, s_occ_integral,
                        PyList_GET_SIZE(target) * (now - last)) < 0 ||
            set_ll_attr(owner, s_occ_last_update, now) < 0 ||
            add_ll_attr(owner, s_reads_accepted, 1) < 0)
            return -1;
    }
    if (set_ll_attr(req, s_arrived_mc_at, now) < 0)
        return -1;
    {
        PyObject *mc_id = fast_getattr(owner, s_mc_id);
        if (mc_id == NULL)
            return -1;
        int rc = PyObject_SetAttr(req, s_mc_id, mc_id);
        Py_DECREF(mc_id);
        if (rc < 0)
            return -1;
    }
    long long bank_id;
    if (get_ll_attr(req, s_bank_id, &bank_id) < 0)
        return -1;
    if (bank_id < 0) {
        PyObject *map = fast_getattr(owner, s_map);
        if (map == NULL)
            return -1;
        PyObject *addr = PyObject_GetAttr(req, s_addr);
        if (addr == NULL) {
            Py_DECREF(map);
            return -1;
        }
        PyObject *decoded =
            PyObject_CallMethodObjArgs(map, s_decode, addr, NULL);
        Py_DECREF(addr);
        Py_DECREF(map);
        if (decoded == NULL)
            return -1;
        PyObject *fast = PySequence_Fast(
            decoded, "cannot unpack non-iterable address decode result");
        Py_DECREF(decoded);
        if (fast == NULL)
            return -1;
        if (PySequence_Fast_GET_SIZE(fast) != 4) {
            Py_DECREF(fast);
            PyErr_SetString(PyExc_ValueError,
                            "address decode did not yield "
                            "(mc, channel, bank, row)");
            return -1;
        }
        int rc = PyObject_SetAttr(req, s_bank_id,
                                  PySequence_Fast_GET_ITEM(fast, 2)) < 0 ||
                 PyObject_SetAttr(req, s_row_id,
                                  PySequence_Fast_GET_ITEM(fast, 3)) < 0;
        Py_DECREF(fast);
        if (rc)
            return -1;
    }
    if (PyList_Append(target, req) < 0)
        return -1;
    {
        PyObject *stats = fast_getattr(owner, s_stats_attr);
        if (stats == NULL)
            return -1;
        int rc = add_ll_attr(stats, s_requests_enqueued, 1);
        Py_DECREF(stats);
        if (rc < 0)
            return -1;
    }
    {
        PyObject *policy = fast_getattr(owner, s_policy);
        if (policy == NULL)
            return -1;
        int done = 0;
        if ((PyObject *)Py_TYPE(policy) == g_cls_arbiter) {
            done = arb_on_accept_native(policy, req);
            if (done < 0) {
                Py_DECREF(policy);
                return -1;
            }
            if (done)
                kind_count_sync_hit(KIND_IDX_POLICY_ON_ACCEPT);
        }
        if (!done) {
            PyObject *now_obj = PyLong_FromLongLong(now);
            if (now_obj == NULL) {
                Py_DECREF(policy);
                return -1;
            }
            PyObject *result = PyObject_CallMethodObjArgs(
                policy, s_on_accept, req, now_obj, NULL);
            Py_DECREF(now_obj);
            if (result == NULL) {
                Py_DECREF(policy);
                return -1;
            }
            Py_DECREF(result);
        }
        Py_DECREF(policy);
    }
    if (self->sanitizer != Py_None &&
        call_1(self->sanitizer, s_on_accept, req) < 0)
        return -1;
    if (self->tracer != Py_None &&
        call_1(self->tracer, s_arrived, req) < 0)
        return -1;
    /* inlined _note_arrival() */
    long long inflight;
    if (get_ll_attr(owner, s_inflight, &inflight) < 0)
        return -1;
    if (inflight == 0 && set_ll_attr(owner, s_active_since, now) < 0)
        return -1;
    if (set_ll_attr(owner, s_inflight, inflight + 1) < 0)
        return -1;
    if (ctrl_request_pass(self, owner, now) < 0)
        return -1;
    *accepted = 1;
    return 0;
}

/* try_enqueue on a controller reached from a System handler: native
 * when the controller is the exact registered class on this engine and
 * its state preflights clean, else the ordinary Python method call. */
static int
try_enqueue_any(WheelCore *self, PyObject *controller, PyObject *req,
                int *accepted)
{
    if ((PyObject *)Py_TYPE(controller) != g_cls_controller ||
        owner_shadows(controller, g_shadow_ctrl, g_shadow_ctrl_n))
        return try_enqueue_python(controller, req, accepted);
    PyObject *engine = fast_getattr(controller, s_engine_priv);
    if (engine == NULL) {
        PyErr_Clear();
        return try_enqueue_python(controller, req, accepted);
    }
    int ours = engine == (PyObject *)self;
    Py_DECREF(engine);
    if (!ours)
        return try_enqueue_python(controller, req, accepted);
    CtrlState st;
    int vetted = ctrl_preflight_queues(controller, &st);
    if (vetted < 0)
        return -1;
    if (!vetted)
        return try_enqueue_python(controller, req, accepted);
    int rc = ctrl_try_enqueue_native(self, controller, &st, req, accepted);
    ctrl_state_clear(&st);
    return rc;
}

/* MemoryController._issue(req, now): bus reserve, bank issue, stamps,
 * queue removal, and the completion (or fused-chain) post. */
static int
ctrl_issue(WheelCore *self, PyObject *owner, CtrlState *st, PyObject *req)
{
    long long now = self->now;
    long long bank_id;
    if (get_ll_attr(req, s_bank_id, &bank_id) < 0)
        return -1;
    if (bank_id < 0 || bank_id >= PyList_GET_SIZE(st->banks)) {
        PyErr_SetString(PyExc_IndexError, "list index out of range");
        return -1;
    }
    PyObject *bank = PyList_GET_ITEM(st->banks, (Py_ssize_t)bank_id);
    if ((PyObject *)Py_TYPE(bank) != g_cls_bank) {
        /* exotic bank subclass: run this one issue through the Python
         * method — the exact code path pure executes — instead of the
         * Bank.issue transcription below */
        PyObject *now_obj = PyLong_FromLongLong(now);
        if (now_obj == NULL)
            return -1;
        PyObject *res = PyObject_CallMethodObjArgs(owner, s_issue_name,
                                                   req, now_obj, NULL);
        Py_DECREF(now_obj);
        if (res == NULL)
            return -1;
        Py_DECREF(res);
        return 0;
    }
    PyObject *row_obj = PyObject_GetAttr(req, s_row_id);
    if (row_obj == NULL)
        return -1;
    long long prep;
    if (st->uniform_prep != Py_None) {
        if (ll_from(st->uniform_prep, &prep) < 0)
            goto fail_row;
    } else if (bank_prep_cycles(bank, row_obj, &prep) < 0) {
        goto fail_row;
    }
    /* inlined DataBus.reserve() */
    long long free_at, burst;
    if (get_ll_attr(st->bus, s_free_at, &free_at) < 0 ||
        get_ll_attr(st->bus, s_burst, &burst) < 0)
        goto fail_row;
    long long data_start = now + prep;
    if (data_start < free_at)
        data_start = free_at;
    long long data_end = data_start + burst;
    if (set_ll_attr(st->bus, s_free_at, data_end) < 0 ||
        add_ll_attr(st->bus, s_busy_cycles, burst) < 0 ||
        add_ll_attr(st->bus, s_transfers, 1) < 0)
        goto fail_row;
    /* Bank.issue(now, row, data_end) */
    long long busy_until;
    if (get_ll_attr(bank, s_busy_until, &busy_until) < 0)
        goto fail_row;
    if (now < busy_until) {
        long long bank_own_id;
        if (get_ll_attr(bank, s_bank_id, &bank_own_id) < 0)
            goto fail_row;
        PyErr_Format(PyExc_ValueError,
                     "bank %lld busy until %lld, now %lld",
                     bank_own_id, busy_until, now);
        goto fail_row;
    }
    if (add_ll_attr(bank, s_accesses, 1) < 0)
        goto fail_row;
    int open_page = truthy_attr(bank, s_open_page);
    if (open_page < 0)
        goto fail_row;
    if (open_page) {
        PyObject *open_row = PyObject_GetAttr(bank, s_open_row);
        if (open_row == NULL)
            goto fail_row;
        int hit = PyObject_RichCompareBool(open_row, row_obj, Py_EQ);
        Py_DECREF(open_row);
        if (hit < 0)
            goto fail_row;
        if (hit && add_ll_attr(bank, s_row_hits, 1) < 0)
            goto fail_row;
    }
    long long recovery;
    if (get_ll_attr(bank, s_recovery, &recovery) < 0)
        goto fail_row;
    long long bank_free = data_end + recovery;
    if (set_ll_attr(bank, s_busy_until, bank_free) < 0)
        goto fail_row;
    if (PyObject_SetAttr(bank, s_open_row,
                         open_page ? row_obj : Py_None) < 0)
        goto fail_row;
    /* _bank_busy[bank_id] = bank.busy_until; insort(_busy_times, ...) */
    if (bank_id >= PyList_GET_SIZE(st->bank_busy)) {
        PyErr_SetString(PyExc_IndexError,
                        "list assignment index out of range");
        goto fail_row;
    }
    {
        PyObject *boxed = PyLong_FromLongLong(bank_free);
        if (boxed == NULL)
            goto fail_row;
        if (PyList_SetItem(st->bank_busy, (Py_ssize_t)bank_id, boxed) < 0)
            goto fail_row;
    }
    {
        Py_ssize_t pos = bisect_right_ll(st->busy_times, bank_free);
        if (pos < 0)
            goto fail_row;
        PyObject *boxed = PyLong_FromLongLong(bank_free);
        if (boxed == NULL)
            goto fail_row;
        int rc = PyList_Insert(st->busy_times, pos, boxed);
        Py_DECREF(boxed);
        if (rc < 0)
            goto fail_row;
    }
    if (set_ll_attr(req, s_dispatched_at, now) < 0 ||
        set_ll_attr(req, s_issued_at, now) < 0)
        goto fail_row;
    if (self->sanitizer != Py_None &&
        call_1(self->sanitizer, s_on_issue, req) < 0)
        goto fail_row;
    if (self->tracer != Py_None &&
        call_1(self->tracer, s_issued, req) < 0)
        goto fail_row;
    {
        PyObject *stats = fast_getattr(owner, s_stats_attr);
        if (stats == NULL)
            goto fail_row;
        int rc = add_ll_attr(stats, s_bus_busy_cycles, burst);
        Py_DECREF(stats);
        if (rc < 0)
            goto fail_row;
    }
    int is_write = truthy_attr(req, s_is_memory_write);
    if (is_write < 0)
        goto fail_row;
    PyObject *queue;
    if (is_write) {
        queue = st->write_queue;
    } else {
        /* inlined _update_occupancy() before the removal below */
        long long last;
        if (get_ll_attr(owner, s_occ_last_update, &last) < 0)
            goto fail_row;
        if (add_ll_attr(owner, s_occ_integral,
                        PyList_GET_SIZE(st->read_queue) * (now - last)) < 0 ||
            set_ll_attr(owner, s_occ_last_update, now) < 0)
            goto fail_row;
        queue = st->read_queue;
    }
    for (Py_ssize_t i = 0; i < PyList_GET_SIZE(queue); i++) {
        if (PyList_GET_ITEM(queue, i) == req) {
            if (PyList_SetSlice(queue, i, i + 1, NULL) < 0)
                goto fail_row;
            break;
        }
    }
    int is_read = truthy_attr(req, s_is_read);
    if (is_read < 0)
        goto fail_row;
    if (is_read && st->fused != Py_None) {
        PyObject *core_id = PyObject_GetAttr(req, s_core_id);
        if (core_id == NULL)
            goto fail_row;
        PyObject *fused_val = PyDict_GetItemWithError(st->fused, core_id);
        Py_DECREF(core_id);
        if (fused_val == NULL && PyErr_Occurred())
            goto fail_row;
        if (fused_val != NULL) {
            /* engine.post_chain_at(data_end, self._complete_fused,
             * (req,), return_delay, self._respond_fn, (core, req)) */
            if (!PyTuple_Check(fused_val) ||
                PyTuple_GET_SIZE(fused_val) != 2) {
                PyErr_SetString(PyExc_TypeError,
                                "fused-read entry is not (core, delay)");
                goto fail_row;
            }
            PyObject *core = PyTuple_GET_ITEM(fused_val, 0);
            PyObject *delay_obj = PyTuple_GET_ITEM(fused_val, 1);
            long long delay;
            if (!PyLong_CheckExact(delay_obj) ||
                ll_from(delay_obj, &delay) < 0 || delay < 1) {
                PyErr_Clear();
                PyErr_Format(g_sim_error ? g_sim_error : PyExc_RuntimeError,
                             "chain link_delay must be a positive int "
                             "(got %R)", delay_obj);
                goto fail_row;
            }
            PyObject *cf =
                g_fn_complete_fused != NULL
                    ? PyMethod_New(g_fn_complete_fused, owner)
                    : PyObject_GetAttr(owner, s_complete_fused_name);
            PyObject *respond = fast_getattr(owner, s_respond_fn);
            PyObject *args1 = PyTuple_Pack(1, req);
            PyObject *args2 = PyTuple_Pack(2, core, req);
            PyObject *entry = NULL;
            if (cf != NULL && respond != NULL && args1 != NULL &&
                args2 != NULL)
                entry = PyList_New(5);
            if (entry == NULL) {
                Py_XDECREF(cf);
                Py_XDECREF(respond);
                Py_XDECREF(args1);
                Py_XDECREF(args2);
                goto fail_row;
            }
            PyList_SET_ITEM(entry, 0, cf);
            PyList_SET_ITEM(entry, 1, args1);
            Py_INCREF(delay_obj);
            PyList_SET_ITEM(entry, 2, delay_obj);
            PyList_SET_ITEM(entry, 3, respond);
            PyList_SET_ITEM(entry, 4, args2);
            int rc = core_post_entry(self, data_end, entry);
            Py_DECREF(entry);
            if (rc < 0)
                goto fail_row;
            Py_DECREF(row_obj);
            return 0;
        }
    }
    {
        PyObject *cb = g_fn_complete != NULL
                           ? PyMethod_New(g_fn_complete, owner)
                           : PyObject_GetAttr(owner, s_complete_name);
        if (cb == NULL)
            goto fail_row;
        PyObject *inner = PyTuple_Pack(1, req);
        if (inner == NULL) {
            Py_DECREF(cb);
            goto fail_row;
        }
        int rc;
        if (data_end < self->horizon) {
            rc = core_post_call(self, data_end, cb, inner);
        } else {
            /* engine.post_at(data_end, self._complete, (req,)) passes
             * the tuple through *args, so the stored args are ((req,),)
             * — mirror the quirk, don't fix it */
            PyObject *outer = PyTuple_Pack(1, inner);
            if (outer == NULL) {
                Py_DECREF(inner);
                Py_DECREF(cb);
                goto fail_row;
            }
            rc = core_post_call(self, data_end, cb, outer);
            Py_DECREF(outer);
        }
        Py_DECREF(inner);
        Py_DECREF(cb);
        if (rc < 0)
            goto fail_row;
    }
    Py_DECREF(row_obj);
    return 0;
fail_row:
    Py_DECREF(row_obj);
    return -1;
}

/* MemoryController._issue_ready(now): serve ready requests until
 * banks, bus, or queues run out.  Returns issued reads via *out. */
static int
ctrl_issue_ready(WheelCore *self, PyObject *owner, CtrlState *st,
                 long long *out)
{
    long long now = self->now;
    long long issued_reads = 0;
    int draining = truthy_attr(owner, s_draining_writes);
    if (draining < 0)
        return -1;
    long long free_at;
    if (get_ll_attr(st->bus, s_free_at, &free_at) < 0)
        return -1;
    long long bus_backlog = free_at - now;
    PyObject *now_obj = PyLong_FromLongLong(now);
    if (now_obj == NULL)
        return -1;
    PyObject *ready_reads = NULL, *ready_writes = NULL;
    ready_reads = PyList_GET_SIZE(st->read_queue)
        ? ready_scan_impl(st->read_queue, st->bank_busy, st->banks,
                          st->uniform_prep, bus_backlog, now)
        : PyList_New(0);
    if (ready_reads == NULL)
        goto fail;
    for (;;) {
        PyObject *pool;
        if (draining || PyList_GET_SIZE(ready_reads) == 0) {
            if (ready_writes == NULL) {
                ready_writes = PyList_GET_SIZE(st->write_queue)
                    ? ready_scan_impl(st->write_queue, st->bank_busy,
                                      st->banks, st->uniform_prep,
                                      bus_backlog, now)
                    : PyList_New(0);
                if (ready_writes == NULL)
                    goto fail;
            }
            pool = PyList_GET_SIZE(ready_writes) ? ready_writes
                                                 : ready_reads;
        } else {
            pool = ready_reads;
        }
        if (PyList_GET_SIZE(pool) == 0)
            break;
        /* self.policy re-read per pick, exactly like the pure loop */
        PyObject *policy = fast_getattr(owner, s_policy);
        if (policy == NULL)
            goto fail;
        PyObject *req = NULL;
        if ((PyObject *)Py_TYPE(policy) == g_cls_arbiter) {
            int picked = arb_pick_native(policy, pool, st->banks, &req);
            if (picked < 0) {
                Py_DECREF(policy);
                goto fail;
            }
            if (picked)
                kind_count_sync_hit(KIND_IDX_POLICY_PICK);
        }
        if (req == NULL)
            req = PyObject_CallMethodObjArgs(policy, s_pick, pool,
                                             st->banks, now_obj, NULL);
        Py_DECREF(policy);
        if (req == NULL)
            goto fail;
        if (ctrl_issue(self, owner, st, req) < 0) {
            Py_DECREF(req);
            goto fail;
        }
        int is_read = truthy_attr(req, s_is_read);
        if (is_read < 0) {
            Py_DECREF(req);
            goto fail;
        }
        if (is_read)
            issued_reads += 1;
        if (get_ll_attr(st->bus, s_free_at, &free_at) < 0) {
            Py_DECREF(req);
            goto fail;
        }
        bus_backlog = free_at - now;
        PyObject *kept = filter_ready_impl(ready_reads, req, st->banks,
                                           st->uniform_prep, bus_backlog);
        if (kept == NULL) {
            Py_DECREF(req);
            goto fail;
        }
        Py_SETREF(ready_reads, kept);
        if (ready_writes != NULL) {
            kept = filter_ready_impl(ready_writes, req, st->banks,
                                     st->uniform_prep, bus_backlog);
            if (kept == NULL) {
                Py_DECREF(req);
                goto fail;
            }
            Py_SETREF(ready_writes, kept);
        }
        Py_DECREF(req);
    }
    Py_DECREF(now_obj);
    Py_DECREF(ready_reads);
    Py_XDECREF(ready_writes);
    *out = issued_reads;
    return 0;
fail:
    Py_DECREF(now_obj);
    Py_XDECREF(ready_reads);
    Py_XDECREF(ready_writes);
    return -1;
}

/* kind: MemoryController._run_pass(token) */
static int
kind_mc_run_pass(WheelCore *self, PyObject *owner, PyObject *cb,
                 PyObject *args)
{
    (void)cb;
    if (PyTuple_GET_SIZE(args) != 1 ||
        !PyLong_CheckExact(PyTuple_GET_ITEM(args, 0)))
        return 0;
    long long token;
    if (ll_from(PyTuple_GET_ITEM(args, 0), &token) < 0)
        return -1;
    if (owner_shadows(owner, g_shadow_ctrl, g_shadow_ctrl_n))
        return 0;
    PyObject *pass_token = fast_getattr(owner, s_pass_token);
    if (pass_token == NULL) {
        PyErr_Clear();
        return 0;
    }
    if (!PyLong_CheckExact(pass_token)) {
        Py_DECREF(pass_token);
        return 0;
    }
    long long current;
    int rc = ll_from(pass_token, &current);
    Py_DECREF(pass_token);
    if (rc < 0)
        return -1;
    if (token != current)
        return 1; /* superseded: a handled no-op, exactly like pure */
    /* Run the cheap early phases before the full container preflight:
     * the mutations here (_pass_at, draining_writes) are idempotent, so
     * a decline below still falls back to the Python body safely — it
     * recomputes them to the same values.  This skips ~7 container
     * vettings on every drained pass (the common case). */
    PyObject *read_queue = fast_getattr(owner, s_read_queue);
    if (read_queue == NULL) {
        PyErr_Clear();
        return 0;
    }
    PyObject *write_queue = fast_getattr(owner, s_write_queue);
    if (write_queue == NULL) {
        PyErr_Clear();
        Py_DECREF(read_queue);
        return 0;
    }
    if (!PyList_CheckExact(read_queue) ||
        !PyList_CheckExact(write_queue)) {
        Py_DECREF(read_queue);
        Py_DECREF(write_queue);
        return 0;
    }
    if (fast_setattr(owner, s_pass_at, Py_None) < 0)
        goto fail_queues;
    /* watermark-based write-drain switch (inlined _update_write_mode) */
    {
        int draining = truthy_attr(owner, s_draining_writes);
        if (draining < 0)
            goto fail_queues;
        Py_ssize_t backlog = PyList_GET_SIZE(write_queue);
        if (draining) {
            long long wm_low;
            if (get_ll_attr(owner, s_wm_low, &wm_low) < 0)
                goto fail_queues;
            if (backlog <= wm_low &&
                fast_setattr(owner, s_draining_writes, Py_False) < 0)
                goto fail_queues;
        } else {
            long long wm_high;
            if (get_ll_attr(owner, s_wm_high, &wm_high) < 0)
                goto fail_queues;
            if (backlog >= wm_high &&
                fast_setattr(owner, s_draining_writes, Py_True) < 0)
                goto fail_queues;
        }
    }
    if (PyList_GET_SIZE(read_queue) == 0 &&
        PyList_GET_SIZE(write_queue) == 0) {
        Py_DECREF(read_queue);
        Py_DECREF(write_queue);
        return 1; /* drained pass: skip issue/wakeup, exactly like pure */
    }
    Py_DECREF(read_queue);
    Py_DECREF(write_queue);
    CtrlState st;
    int vetted = ctrl_preflight(owner, &st);
    if (vetted <= 0)
        return vetted;
    long long issued_reads;
    if (ctrl_issue_ready(self, owner, &st, &issued_reads) < 0)
        goto fail;
    if (issued_reads && ctrl_notify_space(self, owner, &st) < 0)
        goto fail;
    if (ctrl_schedule_wakeup(self, owner, &st) < 0)
        goto fail;
    ctrl_state_clear(&st);
    return 1;
fail:
    ctrl_state_clear(&st);
    return -1;
fail_queues:
    Py_DECREF(read_queue);
    Py_DECREF(write_queue);
    return -1;
}

/* shared body of _complete / _complete_fused: _retire + re-arm */
static int
kind_mc_complete_common(WheelCore *self, PyObject *owner, PyObject *args,
                        int notify_read)
{
    if (PyTuple_GET_SIZE(args) != 1)
        return 0;
    if (owner_shadows(owner, g_shadow_ctrl, g_shadow_ctrl_n))
        return 0;
    PyObject *req = PyTuple_GET_ITEM(args, 0);
    long long now = self->now;
    /* _retire(req) */
    if (set_ll_attr(req, s_completed_at, now) < 0)
        return -1;
    if (self->sanitizer != Py_None &&
        call_1(self->sanitizer, s_on_complete, req) < 0)
        return -1;
    if (self->tracer != Py_None &&
        call_1(self->tracer, s_completed, req) < 0)
        return -1;
    {
        PyObject *stats = fast_getattr(owner, s_stats_attr);
        if (stats == NULL)
            return -1;
        int rc = stats_record_completion(stats, req);
        if (rc == 0) {
            /* inlined _note_retirement() */
            long long inflight;
            rc = get_ll_attr(owner, s_inflight, &inflight);
            if (rc == 0) {
                inflight -= 1;
                rc = set_ll_attr(owner, s_inflight, inflight);
                if (rc == 0 && inflight == 0) {
                    long long since;
                    rc = get_ll_attr(owner, s_active_since, &since);
                    if (rc == 0) {
                        long long delta = now - since;
                        rc = add_ll_attr(owner, s_active_cycles, delta);
                        if (rc == 0)
                            rc = add_ll_attr(stats, s_mc_active_cycles,
                                             delta);
                    }
                }
            }
        }
        Py_DECREF(stats);
        if (rc < 0)
            return -1;
    }
    if (notify_read) {
        int is_read = truthy_attr(req, s_is_read);
        if (is_read < 0)
            return -1;
        if (is_read) {
            PyObject *hook = fast_getattr(owner, s_on_read_complete);
            if (hook == NULL)
                return -1;
            if (hook != Py_None) {
                PyObject *result =
                    PyObject_CallFunctionObjArgs(hook, req, NULL);
                Py_DECREF(hook);
                if (result == NULL)
                    return -1;
                Py_DECREF(result);
            } else {
                Py_DECREF(hook);
            }
        }
    }
    if (ctrl_request_pass(self, owner, now) < 0)
        return -1;
    return 1;
}

/* kind: MemoryController._complete(req) */
static int
kind_mc_complete(WheelCore *self, PyObject *owner, PyObject *cb,
                 PyObject *args)
{
    (void)cb;
    return kind_mc_complete_common(self, owner, args, 1);
}

/* kind: MemoryController._complete_fused(req) */
static int
kind_mc_complete_fused(WheelCore *self, PyObject *owner, PyObject *cb,
                       PyObject *args)
{
    (void)cb;
    return kind_mc_complete_common(self, owner, args, 0);
}

/* ---- system: the NoC delivery / ingress-pump / response family ---- */

/* owner.<name>[mc_id] with the outer attr vetted as an exact list and
 * mc_id in range.  1 ok (*outer owned, *item borrowed), 0 decline. */
static int
sys_slot(PyObject *owner, PyObject *name, long long mc_id,
         PyObject **outer, PyObject **item)
{
    PyObject *seq = fast_getattr(owner, name);
    if (seq == NULL) {
        PyErr_Clear();
        return 0;
    }
    if (!PyList_CheckExact(seq) || mc_id < 0 ||
        mc_id >= PyList_GET_SIZE(seq)) {
        Py_DECREF(seq);
        return 0;
    }
    *outer = seq;
    *item = PyList_GET_ITEM(seq, (Py_ssize_t)mc_id);
    return 1;
}

/* kind: System._deliver(req) */
static int
kind_sys_deliver(WheelCore *self, PyObject *owner, PyObject *cb,
                 PyObject *args)
{
    (void)cb;
    if (PyTuple_GET_SIZE(args) != 1)
        return 0;
    if (owner_shadows(owner, g_shadow_system, g_shadow_system_n))
        return 0;
    PyObject *req = PyTuple_GET_ITEM(args, 0);
    PyObject *mc_id_obj = PyObject_GetAttr(req, s_mc_id);
    if (mc_id_obj == NULL) {
        PyErr_Clear();
        return 0;
    }
    if (!PyLong_CheckExact(mc_id_obj)) {
        Py_DECREF(mc_id_obj);
        return 0;
    }
    long long mc_id;
    if (ll_from(mc_id_obj, &mc_id) < 0) {
        Py_DECREF(mc_id_obj);
        return -1;
    }
    PyObject *arrivals = NULL, *buf = NULL;
    PyObject *armed_outer = NULL, *armed = NULL;
    int rc = sys_slot(owner, s_mc_arrivals, mc_id, &arrivals, &buf);
    if (rc <= 0)
        goto decline;
    if (!PyList_CheckExact(buf))
        goto decline;
    rc = sys_slot(owner, s_mc_pump_armed, mc_id, &armed_outer, &armed);
    if (rc <= 0)
        goto decline;
    if (PyList_Append(buf, req) < 0)
        goto fail;
    rc = PyObject_IsTrue(armed);
    if (rc < 0)
        goto fail;
    if (!rc) {
        Py_INCREF(Py_True);
        if (PyList_SetItem(armed_outer, (Py_ssize_t)mc_id, Py_True) < 0)
            goto fail;
        PyObject *pump = g_fn_pump_mc != NULL
                             ? PyMethod_New(g_fn_pump_mc, owner)
                             : PyObject_GetAttr(owner, s_pump_mc_name);
        if (pump == NULL)
            goto fail;
        PyObject *pargs = PyTuple_Pack(1, mc_id_obj);
        if (pargs == NULL) {
            Py_DECREF(pump);
            goto fail;
        }
        rc = core_post_late(self, self->now, pump, pargs);
        Py_DECREF(pargs);
        Py_DECREF(pump);
        if (rc < 0)
            goto fail;
    }
    Py_DECREF(armed_outer);
    Py_DECREF(arrivals);
    Py_DECREF(mc_id_obj);
    return 1;
decline:
    Py_XDECREF(armed_outer);
    Py_XDECREF(arrivals);
    Py_DECREF(mc_id_obj);
    return 0;
fail:
    Py_XDECREF(armed_outer);
    Py_XDECREF(arrivals);
    Py_DECREF(mc_id_obj);
    return -1;
}

/* System._on_mc_space(mc_id): set the space hint and arm a late pump.
 * Shared between the synchronous listener fan-out (ctrl_notify_space)
 * and the dispatch-path kind handler below.  1 = done, 0 = shapes off
 * (caller falls back to the Python method), -1 = error. */
static int
sys_on_mc_space_native(WheelCore *self, PyObject *owner,
                       PyObject *mc_id_obj, long long mc_id)
{
    PyObject *hint_outer = NULL, *hint = NULL;
    PyObject *armed_outer = NULL, *armed = NULL;
    if (owner_shadows(owner, g_shadow_system, g_shadow_system_n))
        return 0;
    int rc = sys_slot(owner, s_mc_space_hint, mc_id, &hint_outer, &hint);
    if (rc <= 0)
        return rc;
    rc = sys_slot(owner, s_mc_pump_armed, mc_id, &armed_outer, &armed);
    if (rc <= 0) {
        Py_DECREF(hint_outer);
        return rc;
    }
    Py_INCREF(Py_True);
    if (PyList_SetItem(hint_outer, (Py_ssize_t)mc_id, Py_True) < 0)
        goto fail;
    rc = PyObject_IsTrue(armed);
    if (rc < 0)
        goto fail;
    if (!rc) {
        Py_INCREF(Py_True);
        if (PyList_SetItem(armed_outer, (Py_ssize_t)mc_id, Py_True) < 0)
            goto fail;
        PyObject *pump = g_fn_pump_mc != NULL
                             ? PyMethod_New(g_fn_pump_mc, owner)
                             : PyObject_GetAttr(owner, s_pump_mc_name);
        if (pump == NULL)
            goto fail;
        PyObject *pargs = PyTuple_Pack(1, mc_id_obj);
        if (pargs == NULL) {
            Py_DECREF(pump);
            goto fail;
        }
        rc = core_post_late(self, self->now, pump, pargs);
        Py_DECREF(pargs);
        Py_DECREF(pump);
        if (rc < 0)
            goto fail;
    }
    Py_DECREF(armed_outer);
    Py_DECREF(hint_outer);
    return 1;
fail:
    Py_DECREF(armed_outer);
    Py_DECREF(hint_outer);
    return -1;
}

/* kind: System._on_mc_space(mc_id) as a wheel event (it is normally
 * invoked synchronously, but an event-dispatched call mirrors too) */
static int
kind_sys_on_mc_space(WheelCore *self, PyObject *owner, PyObject *cb,
                     PyObject *args)
{
    (void)cb;
    if (PyTuple_GET_SIZE(args) != 1 ||
        !PyLong_CheckExact(PyTuple_GET_ITEM(args, 0)))
        return 0;
    PyObject *mc_id_obj = PyTuple_GET_ITEM(args, 0);
    long long mc_id;
    if (ll_from(mc_id_obj, &mc_id) < 0)
        return -1;
    return sys_on_mc_space_native(self, owner, mc_id_obj, mc_id);
}

/* System._queue_pending_read's body (mc_id slots already resolved) */
static int
sys_queue_pending_read(PyObject *pending_reads, PyObject *sources,
                       PyObject *req, PyObject *core_id)
{
    PyObject *per_core = PyDict_GetItemWithError(pending_reads, core_id);
    if (per_core == NULL) {
        if (PyErr_Occurred())
            return -1;
        PyObject *fresh = PyObject_CallNoArgs(g_cls_deque);
        if (fresh == NULL)
            return -1;
        if (PyDict_SetItem(pending_reads, core_id, fresh) < 0) {
            Py_DECREF(fresh);
            return -1;
        }
        long long core_ll;
        if (ll_from(core_id, &core_ll) < 0) {
            Py_DECREF(fresh);
            return -1;
        }
        Py_ssize_t pos = bisect_right_ll(sources, core_ll);
        if (pos < 0 || PyList_Insert(sources, pos, core_id) < 0) {
            Py_DECREF(fresh);
            return -1;
        }
        int rc = call_1(fresh, s_append, req);
        Py_DECREF(fresh);
        return rc;
    }
    return call_1(per_core, s_append, req);
}

/* System._admit_pending_reads(mc_id): round-robin one-per-core
 * admission; returns early (rc 0) the moment an enqueue is refused. */
static int
sys_admit_pending_reads(WheelCore *self, PyObject *controller,
                        PyObject *pending_reads, PyObject *sources,
                        PyObject *rr_outer, long long mc_id)
{
    while (PyList_GET_SIZE(sources) > 0) {
        long long rr;
        if (ll_from(PyList_GET_ITEM(rr_outer, (Py_ssize_t)mc_id), &rr) < 0)
            return -1;
        Py_ssize_t n = PyList_GET_SIZE(sources);
        Py_ssize_t start = bisect_left_ll(sources, rr);
        if (start < 0)
            return -1;
        PyObject *tail = PyList_GetSlice(sources, start, n);
        if (tail == NULL)
            return -1;
        PyObject *head = PyList_GetSlice(sources, 0, start);
        if (head == NULL) {
            Py_DECREF(tail);
            return -1;
        }
        PyObject *ordered = PySequence_Concat(tail, head);
        Py_DECREF(tail);
        Py_DECREF(head);
        if (ordered == NULL)
            return -1;
        int admitted_any = 0;
        for (Py_ssize_t i = 0; i < PyList_GET_SIZE(ordered); i++) {
            PyObject *core_obj = PyList_GET_ITEM(ordered, i);
            Py_INCREF(core_obj);
            long long core_ll;
            if (ll_from(core_obj, &core_ll) < 0)
                goto item_fail;
            PyObject *queue =
                PyDict_GetItemWithError(pending_reads, core_obj);
            if (queue == NULL) {
                if (!PyErr_Occurred())
                    PyErr_SetObject(PyExc_KeyError, core_obj);
                goto item_fail;
            }
            PyObject *front = PySequence_GetItem(queue, 0);
            if (front == NULL)
                goto item_fail;
            int accepted;
            if (try_enqueue_any(self, controller, front, &accepted) < 0) {
                Py_DECREF(front);
                goto item_fail;
            }
            Py_DECREF(front);
            if (!accepted) {
                Py_DECREF(core_obj);
                Py_DECREF(ordered);
                return 0;
            }
            {
                PyObject *popped =
                    PyObject_CallMethodObjArgs(queue, s_popleft, NULL);
                if (popped == NULL)
                    goto item_fail;
                Py_DECREF(popped);
            }
            Py_ssize_t remaining = PyObject_Size(queue);
            if (remaining < 0)
                goto item_fail;
            if (remaining == 0) {
                if (PyDict_DelItem(pending_reads, core_obj) < 0)
                    goto item_fail;
                Py_ssize_t at = bisect_left_ll(sources, core_ll);
                if (at < 0 ||
                    PyList_SetSlice(sources, at, at + 1, NULL) < 0)
                    goto item_fail;
            }
            {
                PyObject *next_rr = PyLong_FromLongLong(core_ll + 1);
                if (next_rr == NULL)
                    goto item_fail;
                if (PyList_SetItem(rr_outer, (Py_ssize_t)mc_id,
                                   next_rr) < 0)
                    goto item_fail;
            }
            admitted_any = 1;
            Py_DECREF(core_obj);
            continue;
        item_fail:
            Py_DECREF(core_obj);
            Py_DECREF(ordered);
            return -1;
        }
        Py_DECREF(ordered);
        if (!admitted_any)
            return 0;
    }
    return 0;
}

/* kind: System._pump_mc(mc_id) */
static int
kind_sys_pump_mc(WheelCore *self, PyObject *owner, PyObject *cb,
                 PyObject *args)
{
    (void)cb;
    if (PyTuple_GET_SIZE(args) != 1 ||
        !PyLong_CheckExact(PyTuple_GET_ITEM(args, 0)))
        return 0;
    long long mc_id;
    if (ll_from(PyTuple_GET_ITEM(args, 0), &mc_id) < 0)
        return -1;
    if (owner_shadows(owner, g_shadow_system, g_shadow_system_n))
        return 0;
    /* pre-flight every container before the first mutation */
    PyObject *controllers = NULL, *controller = NULL;
    PyObject *armed_outer = NULL, *armed = NULL;
    PyObject *hint_outer = NULL, *hint = NULL;
    PyObject *pw_outer = NULL, *pending_writes = NULL;
    PyObject *buf_outer = NULL, *buf = NULL;
    PyObject *pr_outer = NULL, *pending_reads = NULL;
    PyObject *src_outer = NULL, *sources = NULL;
    PyObject *rr_outer = NULL, *rr = NULL;
    PyObject *arrivals = NULL;
    int rc = 1;
    if (sys_slot(owner, s_controllers, mc_id, &controllers,
                 &controller) <= 0)
        goto decline;
    if (sys_slot(owner, s_mc_pump_armed, mc_id, &armed_outer,
                 &armed) <= 0)
        goto decline;
    if (sys_slot(owner, s_mc_space_hint, mc_id, &hint_outer, &hint) <= 0)
        goto decline;
    if (sys_slot(owner, s_mc_pending_writes, mc_id, &pw_outer,
                 &pending_writes) <= 0)
        goto decline;
    if ((PyObject *)Py_TYPE(pending_writes) != g_cls_deque)
        goto decline;
    if (sys_slot(owner, s_mc_arrivals, mc_id, &buf_outer, &buf) <= 0)
        goto decline;
    if (!PyList_CheckExact(buf))
        goto decline;
    if (sys_slot(owner, s_mc_pending_reads, mc_id, &pr_outer,
                 &pending_reads) <= 0)
        goto decline;
    if (!PyDict_CheckExact(pending_reads))
        goto decline;
    if (sys_slot(owner, s_mc_read_sources, mc_id, &src_outer,
                 &sources) <= 0)
        goto decline;
    if (!PyList_CheckExact(sources))
        goto decline;
    if (sys_slot(owner, s_mc_rr_pointer, mc_id, &rr_outer, &rr) <= 0)
        goto decline;
    /* self._mc_pump_armed[mc_id] = False */
    Py_INCREF(Py_False);
    if (PyList_SetItem(armed_outer, (Py_ssize_t)mc_id, Py_False) < 0)
        goto fail;
    {
        int hinted = PyObject_IsTrue(hint);
        if (hinted < 0)
            goto fail;
        if (hinted) {
            Py_INCREF(Py_False);
            if (PyList_SetItem(hint_outer, (Py_ssize_t)mc_id,
                               Py_False) < 0)
                goto fail;
            if (sys_admit_pending_reads(self, controller, pending_reads,
                                        sources, rr_outer, mc_id) < 0)
                goto fail;
            for (;;) {
                Py_ssize_t backlog = PyObject_Size(pending_writes);
                if (backlog < 0)
                    goto fail;
                if (backlog == 0)
                    break;
                PyObject *front = PySequence_GetItem(pending_writes, 0);
                if (front == NULL)
                    goto fail;
                int accepted;
                if (try_enqueue_any(self, controller, front,
                                    &accepted) < 0) {
                    Py_DECREF(front);
                    goto fail;
                }
                Py_DECREF(front);
                if (!accepted)
                    break;
                PyObject *popped = PyObject_CallMethodObjArgs(
                    pending_writes, s_popleft, NULL);
                if (popped == NULL)
                    goto fail;
                Py_DECREF(popped);
            }
        }
    }
    {
        Py_ssize_t pending_count = PyList_GET_SIZE(buf);
        if (pending_count == 0)
            goto done;
        arrivals = PyList_GetSlice(buf, 0, pending_count);
        if (arrivals == NULL)
            goto fail;
        if (PyList_SetSlice(buf, 0, pending_count, NULL) < 0)
            goto fail;
        PyObject *sort = PyObject_GetAttr(arrivals, s_sort);
        if (sort == NULL)
            goto fail;
        PyObject *sorted_none =
            PyObject_Call(sort, g_empty_tuple, g_kw_noc);
        Py_DECREF(sort);
        if (sorted_none == NULL)
            goto fail;
        Py_DECREF(sorted_none);
    }
    for (Py_ssize_t i = 0; i < PyList_GET_SIZE(arrivals); i++) {
        PyObject *req = PyList_GET_ITEM(arrivals, i);
        int is_write = truthy_attr(req, s_is_memory_write);
        if (is_write < 0)
            goto fail;
        if (is_write) {
            Py_ssize_t backlog = PyObject_Size(pending_writes);
            if (backlog < 0)
                goto fail;
            int queue_it = 1;
            if (backlog == 0) {
                int accepted;
                if (try_enqueue_any(self, controller, req,
                                    &accepted) < 0)
                    goto fail;
                queue_it = !accepted;
            }
            if (queue_it &&
                call_1(pending_writes, s_append, req) < 0)
                goto fail;
            continue;
        }
        PyObject *core_id = PyObject_GetAttr(req, s_core_id);
        if (core_id == NULL)
            goto fail;
        PyObject *per_core =
            PyDict_GetItemWithError(pending_reads, core_id);
        if (per_core == NULL && PyErr_Occurred()) {
            Py_DECREF(core_id);
            goto fail;
        }
        int backlogged = 0;
        if (per_core != NULL) {
            backlogged = PyObject_IsTrue(per_core);
            if (backlogged < 0) {
                Py_DECREF(core_id);
                goto fail;
            }
        }
        if (backlogged) {
            if (call_1(per_core, s_append, req) < 0) {
                Py_DECREF(core_id);
                goto fail;
            }
        } else {
            int accepted;
            if (try_enqueue_any(self, controller, req, &accepted) < 0) {
                Py_DECREF(core_id);
                goto fail;
            }
            if (!accepted &&
                sys_queue_pending_read(pending_reads, sources, req,
                                       core_id) < 0) {
                Py_DECREF(core_id);
                goto fail;
            }
        }
        Py_DECREF(core_id);
    }
    goto done;
decline:
    rc = 0;
    goto done;
fail:
    rc = -1;
done:
    Py_XDECREF(arrivals);
    Py_XDECREF(rr_outer);
    Py_XDECREF(src_outer);
    Py_XDECREF(pr_outer);
    Py_XDECREF(buf_outer);
    Py_XDECREF(pw_outer);
    Py_XDECREF(hint_outer);
    Py_XDECREF(armed_outer);
    Py_XDECREF(controllers);
    return rc;
}

/* kind: System._enqueue_response(core, req) */
static int
kind_sys_enqueue_response(WheelCore *self, PyObject *owner, PyObject *cb,
                          PyObject *args)
{
    (void)cb;
    if (PyTuple_GET_SIZE(args) != 2)
        return 0;
    if (owner_shadows(owner, g_shadow_system, g_shadow_system_n))
        return 0;
    PyObject *core = PyTuple_GET_ITEM(args, 0);
    PyObject *req = PyTuple_GET_ITEM(args, 1);
    PyObject *inbox = fast_getattr(owner, s_resp_inbox);
    if (inbox == NULL) {
        PyErr_Clear();
        return 0;
    }
    if (!PyList_CheckExact(inbox)) {
        Py_DECREF(inbox);
        return 0;
    }
    if (PyList_GET_SIZE(inbox) == 0) {
        PyObject *flush =
            g_fn_flush_responses != NULL
                ? PyMethod_New(g_fn_flush_responses, owner)
                : PyObject_GetAttr(owner, s_flush_responses_name);
        if (flush == NULL)
            goto fail;
        int rc = core_post_late(self, self->now, flush, g_empty_tuple);
        Py_DECREF(flush);
        if (rc < 0)
            goto fail;
    }
    {
        int l3 = truthy_attr(req, s_l3_hit);
        if (l3 < 0)
            goto fail;
        PyObject *key;
        if (l3) {
            PyObject *noc_seq = PyObject_GetAttr(req, s_noc_seq);
            if (noc_seq == NULL)
                goto fail;
            key = PyTuple_Pack(3, g_zero, noc_seq, g_zero);
            Py_DECREF(noc_seq);
        } else {
            PyObject *mc_id = PyObject_GetAttr(req, s_mc_id);
            if (mc_id == NULL)
                goto fail;
            PyObject *completed = PyObject_GetAttr(req, s_completed_at);
            if (completed == NULL) {
                Py_DECREF(mc_id);
                goto fail;
            }
            key = PyTuple_Pack(3, g_one, mc_id, completed);
            Py_DECREF(completed);
            Py_DECREF(mc_id);
        }
        if (key == NULL)
            goto fail;
        PyObject *item = PyTuple_Pack(3, key, core, req);
        Py_DECREF(key);
        if (item == NULL)
            goto fail;
        int rc = PyList_Append(inbox, item);
        Py_DECREF(item);
        if (rc < 0)
            goto fail;
    }
    Py_DECREF(inbox);
    return 1;
fail:
    Py_DECREF(inbox);
    return -1;
}

/* kind: System._flush_responses() */
static int
kind_sys_flush_responses(WheelCore *self, PyObject *owner, PyObject *cb,
                         PyObject *args)
{
    (void)self;
    (void)cb;
    if (PyTuple_GET_SIZE(args) != 0)
        return 0;
    if (owner_shadows(owner, g_shadow_system, g_shadow_system_n))
        return 0;
    PyObject *inbox = fast_getattr(owner, s_resp_inbox);
    if (inbox == NULL) {
        PyErr_Clear();
        return 0;
    }
    if (!PyList_CheckExact(inbox)) {
        Py_DECREF(inbox);
        return 0;
    }
    {
        PyObject *fresh = PyList_New(0);
        if (fresh == NULL)
            goto fail;
        int rc = fast_setattr(owner, s_resp_inbox, fresh);
        Py_DECREF(fresh);
        if (rc < 0)
            goto fail;
    }
    {
        PyObject *sort = PyObject_GetAttr(inbox, s_sort);
        if (sort == NULL)
            goto fail;
        PyObject *sorted_none =
            PyObject_Call(sort, g_empty_tuple, g_kw_key);
        Py_DECREF(sort);
        if (sorted_none == NULL)
            goto fail;
        Py_DECREF(sorted_none);
    }
    {
        PyObject *respond = PyObject_GetAttr(owner, s_respond_name);
        if (respond == NULL)
            goto fail;
        for (Py_ssize_t i = 0; i < PyList_GET_SIZE(inbox); i++) {
            PyObject *item = PyList_GET_ITEM(inbox, i);
            if (!PyTuple_Check(item) || PyTuple_GET_SIZE(item) != 3) {
                PyErr_SetString(PyExc_ValueError,
                                "response inbox entry is not "
                                "(key, core, req)");
                Py_DECREF(respond);
                goto fail;
            }
            PyObject *result = PyObject_CallFunctionObjArgs(
                respond, PyTuple_GET_ITEM(item, 1),
                PyTuple_GET_ITEM(item, 2), NULL);
            if (result == NULL) {
                Py_DECREF(respond);
                goto fail;
            }
            Py_DECREF(result);
        }
        Py_DECREF(respond);
    }
    Py_DECREF(inbox);
    return 1;
fail:
    Py_DECREF(inbox);
    return -1;
}

/* ------------------------------------------------------------------ */
/* the kind table and the dispatch-time recognizer                    */
/* ------------------------------------------------------------------ */

typedef int (*native_handler)(WheelCore *, PyObject *, PyObject *,
                              PyObject *);

/* Table entry for kinds that are only executed synchronously from
 * inside other handlers (arbiter pick/on_accept): they are never
 * dispatched as wheel events, so an (impossible) event dispatch just
 * declines to the Python callback. */
static int
kind_decline(WheelCore *self, PyObject *owner, PyObject *cb, PyObject *args)
{
    (void)self;
    (void)owner;
    (void)cb;
    (void)args;
    return 0;
}

typedef struct {
    const char *name;        /* kind tag, as in the NATIVE_KERNELS manifest */
    int engine_is_private;   /* owner's engine attr: "_engine" vs "engine"  */
    native_handler handler;
    PyObject *func;          /* the registered plain function object        */
    PyObject *cls;           /* the exact owner class                       */
    long long hits;
} NativeKind;

/* Frequency-ordered (fig05 dispatch profile): the scan walks this
 * array comparing function pointers, so the common kinds come first. */
static NativeKind g_kinds[] = {
    {"mc_run_pass", 1, kind_mc_run_pass, NULL, NULL, 0},
    {"sys_pump_mc", 0, kind_sys_pump_mc, NULL, NULL, 0},
    {"sys_enqueue_response", 0, kind_sys_enqueue_response, NULL, NULL, 0},
    {"mc_complete_fused", 1, kind_mc_complete_fused, NULL, NULL, 0},
    {"sys_flush_responses", 0, kind_sys_flush_responses, NULL, NULL, 0},
    {"pacer_release_head", 1, kind_pacer_release_head, NULL, NULL, 0},
    {"sys_deliver", 0, kind_sys_deliver, NULL, NULL, 0},
    {"mc_complete", 1, kind_mc_complete, NULL, NULL, 0},
    /* Indices below must match the KIND_IDX_* defines: these kinds are
     * (also) executed synchronously from inside other handlers, and
     * those call sites count their hits by fixed index. */
    {"sys_on_mc_space", 0, kind_sys_on_mc_space, NULL, NULL, 0},
    {"mc_policy_on_accept", 0, kind_decline, NULL, NULL, 0},
    {"mc_policy_pick", 0, kind_decline, NULL, NULL, 0},
};
#define N_KINDS ((int)(sizeof(g_kinds) / sizeof(g_kinds[0])))

/* Count a native execution that happened synchronously inside another
 * handler (not via wheel dispatch).  Feeds the per-kind counters only:
 * fastpath_hits/misses stay a strict measure of dispatch-loop coverage. */
static void
kind_count_sync_hit(int idx)
{
    g_kinds[idx].hits += 1;
}

static int g_kinds_ready = 0;

static int
native_dispatch(WheelCore *self, PyObject *cb, PyObject *args)
{
    if (g_kinds_ready && PyMethod_Check(cb) && PyTuple_CheckExact(args)) {
        PyObject *func = PyMethod_GET_FUNCTION(cb);
        for (int i = 0; i < N_KINDS; i++) {
            NativeKind *kind = &g_kinds[i];
            if (kind->func != func)
                continue;
            PyObject *owner = PyMethod_GET_SELF(cb);
            if (owner == NULL ||
                (PyObject *)Py_TYPE(owner) != kind->cls)
                break;
            PyObject *name =
                kind->engine_is_private ? s_engine_priv : s_engine_pub;
            PyObject *engine = inst_get(owner, name); /* borrowed */
            if (engine == NULL) {
                engine = PyObject_GetAttr(owner, name);
                if (engine == NULL) {
                    PyErr_Clear();
                    break;
                }
                int ours = engine == (PyObject *)self;
                Py_DECREF(engine);
                if (!ours)
                    break;
            } else if (engine != (PyObject *)self) {
                break;
            }
            Py_INCREF(owner);
            int handled = kind->handler(self, owner, cb, args);
            Py_DECREF(owner);
            if (handled < 0)
                return -1;
            if (handled) {
                kind->hits += 1;
                self->fastpath_hits += 1;
                g_fp_hits += 1;
                return 1;
            }
            break;
        }
    }
    self->fastpath_misses += 1;
    g_fp_misses += 1;
    return 0;
}

/* ------------------------------------------------------------------ */
/* module plumbing                                                    */
/* ------------------------------------------------------------------ */

static PyObject *
mod_dispatched_total(PyObject *module, PyObject *noargs)
{
    return PyLong_FromLongLong(g_dispatched_total);
}

static PyObject *
mod_install(PyObject *module, PyObject *error_class)
{
    Py_INCREF(error_class);
    Py_XSETREF(g_sim_error, error_class);
    Py_RETURN_NONE;
}

/* _install_kinds(kinds, helpers): bind the native-kind table.
 * kinds: {tag: (function, exact_owner_class)}; helpers: the exact
 * guard classes plus the two sort keys (see repro.accel.native). */
static PyObject *
mod_install_kinds(PyObject *module, PyObject *args)
{
    PyObject *kinds, *helpers;
    if (!PyArg_ParseTuple(args, "O!O!", &PyDict_Type, &kinds,
                          &PyDict_Type, &helpers))
        return NULL;
    if (PyDict_GET_SIZE(kinds) != N_KINDS) {
        PyErr_Format(PyExc_ValueError,
                     "expected %d native kinds, got %zd", N_KINDS,
                     PyDict_GET_SIZE(kinds));
        return NULL;
    }
    g_kinds_ready = 0;
#define HELPER(keystr, target)                                            \
    do {                                                                  \
        PyObject *value = PyDict_GetItemString(helpers, keystr);          \
        if (value == NULL) {                                              \
            if (!PyErr_Occurred())                                        \
                PyErr_Format(PyExc_KeyError,                              \
                             "missing native helper '%s'", keystr);       \
            return NULL;                                                  \
        }                                                                 \
        Py_INCREF(value);                                                 \
        Py_XSETREF(target, value);                                        \
    } while (0)
    HELPER("bank", g_cls_bank);
    HELPER("databus", g_cls_databus);
    HELPER("stats", g_cls_stats);
    HELPER("class_stats", g_cls_class_stats);
    HELPER("deque", g_cls_deque);
#undef HELPER
    {
        PyObject *by_key = PyDict_GetItemString(helpers, "by_key");
        PyObject *by_noc = PyDict_GetItemString(helpers, "by_noc_seq");
        if (by_key == NULL || by_noc == NULL) {
            if (!PyErr_Occurred())
                PyErr_SetString(PyExc_KeyError,
                                "missing native sort-key helpers");
            return NULL;
        }
        PyObject *kw = PyDict_New();
        if (kw == NULL ||
            PyDict_SetItemString(kw, "key", by_key) < 0) {
            Py_XDECREF(kw);
            return NULL;
        }
        Py_XSETREF(g_kw_key, kw);
        kw = PyDict_New();
        if (kw == NULL ||
            PyDict_SetItemString(kw, "key", by_noc) < 0) {
            Py_XDECREF(kw);
            return NULL;
        }
        Py_XSETREF(g_kw_noc, kw);
    }
    for (int i = 0; i < N_KINDS; i++) {
        NativeKind *kind = &g_kinds[i];
        PyObject *spec = PyDict_GetItemString(kinds, kind->name);
        if (spec == NULL) {
            if (!PyErr_Occurred())
                PyErr_Format(PyExc_KeyError,
                             "missing native kind '%s'", kind->name);
            return NULL;
        }
        PyObject *func, *cls;
        if (!PyArg_ParseTuple(spec, "OO", &func, &cls))
            return NULL;
        Py_INCREF(func);
        Py_XSETREF(kind->func, func);
        Py_INCREF(cls);
        Py_XSETREF(kind->cls, cls);
        kind->hits = 0;
        if (strcmp(kind->name, "mc_run_pass") == 0) {
            Py_INCREF(cls);
            Py_XSETREF(g_cls_controller, cls);
            Py_INCREF(func);
            Py_XSETREF(g_fn_run_pass, func);
        } else if (strcmp(kind->name, "mc_complete") == 0) {
            Py_INCREF(func);
            Py_XSETREF(g_fn_complete, func);
        } else if (strcmp(kind->name, "mc_complete_fused") == 0) {
            Py_INCREF(func);
            Py_XSETREF(g_fn_complete_fused, func);
        } else if (strcmp(kind->name, "sys_pump_mc") == 0) {
            Py_INCREF(func);
            Py_XSETREF(g_fn_pump_mc, func);
        } else if (strcmp(kind->name, "sys_flush_responses") == 0) {
            Py_INCREF(func);
            Py_XSETREF(g_fn_flush_responses, func);
        } else if (strcmp(kind->name, "sys_on_mc_space") == 0) {
            Py_INCREF(func);
            Py_XSETREF(g_fn_on_mc_space, func);
            Py_INCREF(cls);
            Py_XSETREF(g_cls_system, cls);
        } else if (strcmp(kind->name, "mc_policy_pick") == 0) {
            Py_INCREF(cls);
            Py_XSETREF(g_cls_arbiter, cls);
        }
    }
    g_kinds_ready = 1;
    Py_RETURN_NONE;
}

/* fastpath_stats() -> {"hits", "misses", "kinds": {tag: hits}} */
static PyObject *
mod_fastpath_stats(PyObject *module, PyObject *noargs)
{
    PyObject *per_kind = PyDict_New();
    if (per_kind == NULL)
        return NULL;
    for (int i = 0; i < N_KINDS; i++) {
        PyObject *hits = PyLong_FromLongLong(g_kinds[i].hits);
        if (hits == NULL)
            goto fail;
        int rc = PyDict_SetItemString(per_kind, g_kinds[i].name, hits);
        Py_DECREF(hits);
        if (rc < 0)
            goto fail;
    }
    {
        PyObject *result = PyDict_New();
        if (result == NULL)
            goto fail;
        PyObject *hits = PyLong_FromLongLong(g_fp_hits);
        PyObject *misses = PyLong_FromLongLong(g_fp_misses);
        int rc = hits == NULL || misses == NULL ||
                 PyDict_SetItemString(result, "hits", hits) < 0 ||
                 PyDict_SetItemString(result, "misses", misses) < 0 ||
                 PyDict_SetItemString(result, "kinds", per_kind) < 0;
        Py_XDECREF(hits);
        Py_XDECREF(misses);
        Py_DECREF(per_kind);
        if (rc) {
            Py_DECREF(result);
            return NULL;
        }
        return result;
    }
fail:
    Py_DECREF(per_kind);
    return NULL;
}

/* native_kinds() -> tuple of registered kind tags */
static PyObject *
mod_native_kinds(PyObject *module, PyObject *noargs)
{
    PyObject *names = PyTuple_New(N_KINDS);
    if (names == NULL)
        return NULL;
    for (int i = 0; i < N_KINDS; i++) {
        PyObject *name = PyUnicode_FromString(g_kinds[i].name);
        if (name == NULL) {
            Py_DECREF(names);
            return NULL;
        }
        PyTuple_SET_ITEM(names, i, name);
    }
    return names;
}

static PyMethodDef module_methods[] = {
    {"ready_scan", mod_ready_scan, METH_VARARGS,
     "Controller bank-ready/row-hit scan (mirror of _ready)."},
    {"filter_ready", mod_filter_ready, METH_VARARGS,
     "Incremental post-pick ready-list filter (mirror of _issue_ready)."},
    {"dispatched_total", mod_dispatched_total, METH_NOARGS,
     "Events dispatched by compiled loops in this process."},
    {"_install", mod_install, METH_O,
     "Inject SimulationError so compiled loops raise the engine's type."},
    {"_install_kinds", mod_install_kinds, METH_VARARGS,
     "Bind the native event-kind table (see repro.accel.native)."},
    {"fastpath_stats", mod_fastpath_stats, METH_NOARGS,
     "Process-wide native fast-path hit/miss counters, per kind."},
    {"native_kinds", mod_native_kinds, METH_NOARGS,
     "Kind tags with a registered C handler, in dispatch-scan order."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef wheelcore_module = {
    PyModuleDef_HEAD_INIT,
    .m_name = "_wheelcore",
    .m_doc = "Compiled timing-wheel and controller kernels for repro.",
    .m_size = -1,
    .m_methods = module_methods,
};

static int
intern_all(void)
{
#define INTERN(var, text)                                                 \
    do {                                                                  \
        var = PyUnicode_InternFromString(text);                           \
        if (var == NULL)                                                  \
            return -1;                                                    \
    } while (0)
    INTERN(s_cancelled, "cancelled");
    INTERN(s_fired, "fired");
    INTERN(s_callback, "callback");
    INTERN(s_args, "args");
    INTERN(s_as_cycles, "_as_cycles");
    INTERN(s_on_event, "on_event");
    INTERN(s_deadline_word, "deadline");
    INTERN(s_bank_id, "bank_id");
    INTERN(s_row_id, "row_id");
    INTERN(s_open_page, "open_page");
    INTERN(s_open_row, "open_row");
    INTERN(s_prep_hit, "prep_hit");
    INTERN(s_prep_miss, "prep_miss");
    /* pacer */
    INTERN(s_popleft, "popleft");
    INTERN(s_release_token, "_release_token");
    INTERN(s_blocked, "_blocked");
    INTERN(s_den, "_den");
    INTERN(s_period_num, "_period_num");
    INTERN(s_cnext_scaled, "_cnext_scaled");
    INTERN(s_released, "released");
    /* controller */
    INTERN(s_pass_token, "_pass_token");
    INTERN(s_pass_at, "_pass_at");
    INTERN(s_draining_writes, "_draining_writes");
    INTERN(s_read_queue, "read_queue");
    INTERN(s_write_queue, "write_queue");
    INTERN(s_wm_low, "_wm_low");
    INTERN(s_wm_high, "_wm_high");
    INTERN(s_banks, "banks");
    INTERN(s_uniform_prep, "_uniform_prep");
    INTERN(s_bus, "bus");
    INTERN(s_free_at, "free_at");
    INTERN(s_busy_cycles, "busy_cycles");
    INTERN(s_transfers, "transfers");
    INTERN(s_burst, "_burst");
    INTERN(s_busy_until, "busy_until");
    INTERN(s_accesses, "accesses");
    INTERN(s_row_hits, "row_hits");
    INTERN(s_recovery, "_recovery");
    INTERN(s_bank_busy, "_bank_busy");
    INTERN(s_busy_times, "_busy_times");
    INTERN(s_dispatched_at, "dispatched_at");
    INTERN(s_issued_at, "issued_at");
    INTERN(s_on_issue, "on_issue");
    INTERN(s_issued, "issued");
    INTERN(s_on_complete, "on_complete");
    INTERN(s_completed, "completed");
    INTERN(s_on_accept, "on_accept");
    INTERN(s_arrived, "arrived");
    INTERN(s_bus_busy_cycles, "bus_busy_cycles");
    INTERN(s_is_memory_write, "is_memory_write");
    INTERN(s_is_read, "is_read");
    INTERN(s_occ_integral, "_occ_integral");
    INTERN(s_occ_last_update, "_occ_last_update");
    INTERN(s_fused, "_fused");
    INTERN(s_respond_fn, "_respond_fn");
    INTERN(s_issue_name, "_issue");
    INTERN(s_complete_name, "_complete");
    INTERN(s_complete_fused_name, "_complete_fused");
    INTERN(s_run_pass_name, "_run_pass");
    INTERN(s_core_id, "core_id");
    INTERN(s_stats_attr, "_stats");
    INTERN(s_inflight, "_inflight");
    INTERN(s_active_since, "_active_since");
    INTERN(s_active_cycles, "active_cycles");
    INTERN(s_mc_active_cycles, "mc_active_cycles");
    INTERN(s_min_prep, "_min_prep");
    INTERN(s_space_listeners, "_space_listeners");
    INTERN(s_mc_id, "mc_id");
    INTERN(s_policy, "policy");
    INTERN(s_pick, "pick");
    INTERN(s_read_capacity, "_read_capacity");
    INTERN(s_write_capacity, "_write_capacity");
    INTERN(s_rejects, "rejects");
    INTERN(s_requests_rejected, "requests_rejected");
    INTERN(s_reads_accepted, "reads_accepted");
    INTERN(s_writes_accepted, "writes_accepted");
    INTERN(s_requests_enqueued, "requests_enqueued");
    INTERN(s_arrived_mc_at, "arrived_mc_at");
    INTERN(s_map, "_map");
    INTERN(s_decode, "decode");
    INTERN(s_addr, "addr");
    INTERN(s_record_completion, "record_completion");
    INTERN(s_on_read_complete, "on_read_complete");
    INTERN(s_try_enqueue, "try_enqueue");
    INTERN(s_engine_pub, "engine");
    INTERN(s_engine_priv, "_engine");
    /* stats */
    INTERN(s_classes, "classes");
    INTERN(s_qos_id, "qos_id");
    INTERN(s_size, "size");
    INTERN(s_bytes_read, "bytes_read");
    INTERN(s_bytes_written, "bytes_written");
    INTERN(s_reads_completed, "reads_completed");
    INTERN(s_writes_completed, "writes_completed");
    INTERN(s_read_latency_sum, "read_latency_sum");
    INTERN(s_read_latency_max, "read_latency_max");
    INTERN(s_reads_attributed, "reads_attributed");
    INTERN(s_reads_unattributed, "reads_unattributed");
    INTERN(s_stage_pacer_sum, "stage_pacer_sum");
    INTERN(s_stage_noc_sum, "stage_noc_sum");
    INTERN(s_stage_queue_sum, "stage_queue_sum");
    INTERN(s_stage_service_sum, "stage_service_sum");
    INTERN(s_sample_latencies, "sample_latencies");
    INTERN(s_epoch_bytes, "_epoch_bytes");
    INTERN(s_created_at, "created_at");
    INTERN(s_released_at, "released_at");
    INTERN(s_completed_at, "completed_at");
    /* system */
    INTERN(s_mc_arrivals, "_mc_arrivals");
    INTERN(s_mc_pump_armed, "_mc_pump_armed");
    INTERN(s_mc_space_hint, "_mc_space_hint");
    INTERN(s_mc_pending_writes, "_mc_pending_writes");
    INTERN(s_mc_pending_reads, "_mc_pending_reads");
    INTERN(s_mc_read_sources, "_mc_read_sources");
    INTERN(s_mc_rr_pointer, "_mc_rr_pointer");
    INTERN(s_resp_inbox, "_resp_inbox");
    INTERN(s_controllers, "controllers");
    INTERN(s_pump_mc_name, "_pump_mc");
    INTERN(s_flush_responses_name, "_flush_responses");
    INTERN(s_respond_name, "_respond");
    INTERN(s_l3_hit, "l3_hit");
    INTERN(s_noc_seq, "noc_seq");
    INTERN(s_sort, "sort");
    INTERN(s_append, "append");
    /* arbiter */
    INTERN(s_registry, "_registry");
    INTERN(s_slack, "_slack");
    INTERN(s_row_hits_first, "_row_hits_first");
    INTERN(s_clocks, "_clocks");
    INTERN(s_last_picked_deadline, "_last_picked_deadline");
    INTERN(s_capped_deadlines, "capped_deadlines");
    INTERN(s_virtual_deadline, "virtual_deadline");
    INTERN(s_req_id, "req_id");
    INTERN(s_stride, "stride");
    INTERN(s_qos_classes, "_classes");
    INTERN(s_issue_ready_name, "_issue_ready");
    INTERN(s_ready_name, "_ready");
    INTERN(s_notify_space_name, "_notify_space");
    INTERN(s_schedule_wakeup_name, "_schedule_wakeup");
    INTERN(s_request_pass_name, "_request_pass");
    INTERN(s_retire_name, "_retire");
    INTERN(s_update_occupancy_name, "_update_occupancy");
    INTERN(s_release_head_name, "_release_head");
    INTERN(s_release_now_name, "_release_now");
    INTERN(s_release_time_name, "_release_time");
    INTERN(s_admit_pending_name, "_admit_pending_reads");
    INTERN(s_queue_pending_name, "_queue_pending_read");
#undef INTERN
    /* Per-class shadow sets: every method a mirrored span of that
     * class freshly looks up in pure Python (the callback itself, the
     * inlined internals, and the continuations fabricated from cached
     * class functions).  An instance-dict hit on any of them drops the
     * component off the fast path — see owner_shadows(). */
    {
        int n = 0;
        g_shadow_ctrl[n++] = s_run_pass_name;
        g_shadow_ctrl[n++] = s_issue_ready_name;
        g_shadow_ctrl[n++] = s_ready_name;
        g_shadow_ctrl[n++] = s_issue_name;
        g_shadow_ctrl[n++] = s_notify_space_name;
        g_shadow_ctrl[n++] = s_schedule_wakeup_name;
        g_shadow_ctrl[n++] = s_request_pass_name;
        g_shadow_ctrl[n++] = s_retire_name;
        g_shadow_ctrl[n++] = s_complete_name;
        g_shadow_ctrl[n++] = s_complete_fused_name;
        g_shadow_ctrl[n++] = s_try_enqueue;
        g_shadow_ctrl[n++] = s_update_occupancy_name;
        g_shadow_ctrl_n = n;
        n = 0;
        g_shadow_pacer[n++] = s_release_head_name;
        g_shadow_pacer[n++] = s_release_now_name;
        g_shadow_pacer[n++] = s_release_time_name;
        g_shadow_pacer_n = n;
        n = 0;
        g_shadow_system[n++] = s_pump_mc_name;
        g_shadow_system[n++] = s_admit_pending_name;
        g_shadow_system[n++] = s_queue_pending_name;
        g_shadow_system[n++] = s_flush_responses_name;
        g_shadow_system_n = n;
        n = 0;
        g_shadow_arb[n++] = s_pick;
        g_shadow_arb[n++] = s_on_accept;
        g_shadow_arb_n = n;
    }
    g_empty_tuple = PyTuple_New(0);
    g_zero = PyLong_FromLong(0);
    g_one = PyLong_FromLong(1);
    if (g_empty_tuple == NULL || g_zero == NULL || g_one == NULL)
        return -1;
    return 0;
}

PyMODINIT_FUNC
PyInit__wheelcore(void)
{
    if (intern_all() < 0)
        return NULL;
    if (PyType_Ready(&WheelCoreType) < 0)
        return NULL;
    PyObject *module = PyModule_Create(&wheelcore_module);
    if (module == NULL)
        return NULL;
    Py_INCREF(&WheelCoreType);
    if (PyModule_AddObject(module, "WheelCore",
                           (PyObject *)&WheelCoreType) < 0) {
        Py_DECREF(&WheelCoreType);
        Py_DECREF(module);
        return NULL;
    }
    if (PyModule_AddIntConstant(module, "WHEEL_BITS", WHEEL_BITS) < 0) {
        Py_DECREF(module);
        return NULL;
    }
    return module;
}
