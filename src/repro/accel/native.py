"""Native event-kind registration for the compiled wheel core.

The C extension executes a closed set of hot callbacks ("native
kinds") without re-entering the interpreter.  The extension only knows
kind *tags*; this module binds each tag to the concrete Python
function/class pair at load time and hands the table to
``_wheelcore._install_kinds`` together with the helper objects the C
handlers need (sort keys, the ``deque`` type, the exact ``Stats`` /
``ClassStats`` / ``Bank`` / ``DataBus`` classes used for type guards).

The set of tags is governed by the committed
:data:`repro.devtools.analysis.hotpath.NATIVE_KERNELS` manifest; the
handshake below refuses to install a table that disagrees with it, and
analyzer rule HOT006 checks the same manifest against the
``repro: native-kernel`` source markers.  Growing the mirrored set is
therefore always a three-sided change: C handler, manifest entry,
source marker.
"""

from __future__ import annotations

import hashlib

__all__ = ["install_native_kinds", "manifest_digest", "native_kinds"]


def _manifest() -> dict[str, str]:
    # Imported lazily: repro.accel must stay importable without pulling
    # in the devtools package until a compiled backend actually loads.
    from repro.devtools.analysis.hotpath import NATIVE_KERNELS

    return NATIVE_KERNELS


def native_kinds() -> dict[str, str]:
    """qualname -> kind tag, as committed in the devtools manifest."""
    return dict(_manifest())


def manifest_digest() -> str:
    """Stable digest of the native-kind inventory.

    Folded into the build fingerprint so a manifest change (new kind,
    renamed tag) invalidates cached extension builds whose registered
    table would no longer match.
    """
    payload = "\n".join(f"{qual}={kind}" for qual, kind in sorted(_manifest().items()))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def install_native_kinds(core) -> None:
    """Register the (function, exact class) table with a loaded core."""
    from collections import deque

    from repro.accel import AccelUnavailable
    from repro.core.arbiter import PriorityArbiter
    from repro.core.pacer import Pacer
    from repro.dram.bank import Bank
    from repro.dram.channel import DataBus
    from repro.dram.controller import MemoryController
    from repro.sim.stats import ClassStats, Stats
    from repro.sim.system import _BY_KEY, _BY_NOC_SEQ, System

    kinds = {
        "pacer_release_head": (Pacer._release_head, Pacer),
        "mc_run_pass": (MemoryController._run_pass, MemoryController),
        "mc_complete": (MemoryController._complete, MemoryController),
        "mc_complete_fused": (MemoryController._complete_fused, MemoryController),
        "sys_deliver": (System._deliver, System),
        "sys_pump_mc": (System._pump_mc, System),
        "sys_enqueue_response": (System._enqueue_response, System),
        "sys_flush_responses": (System._flush_responses, System),
        # Synchronous mirrors: recognized at their C call sites (listener
        # fan-out, arbiter pick/accept), not via wheel dispatch.
        "sys_on_mc_space": (System._on_mc_space, System),
        "mc_policy_on_accept": (PriorityArbiter.on_accept, PriorityArbiter),
        "mc_policy_pick": (PriorityArbiter.pick, PriorityArbiter),
    }
    declared = set(_manifest().values())
    if set(kinds) != declared:
        missing = sorted(declared - set(kinds))
        extra = sorted(set(kinds) - declared)
        raise AccelUnavailable(
            "native kind table disagrees with the NATIVE_KERNELS manifest "
            f"(missing={missing}, unregistered={extra}); update "
            "repro.devtools.analysis.hotpath.NATIVE_KERNELS and "
            "repro.accel.native together"
        )
    helpers = {
        "bank": Bank,
        "databus": DataBus,
        "stats": Stats,
        "class_stats": ClassStats,
        "deque": deque,
        "by_key": _BY_KEY,
        "by_noc_seq": _BY_NOC_SEQ,
    }
    core._install_kinds(kinds, helpers)
