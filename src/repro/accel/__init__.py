"""Runtime-selected compiled backend for the simulation hot core.

Two interchangeable backends execute the timing-wheel dispatch loops and
the memory-controller ready scans:

``pure``
    The reference implementation in :mod:`repro.sim.engine` /
    :mod:`repro.dram.controller`.  Always available, never modified by
    backend selection, and the implementation every determinism argument
    is written against.
``c``
    A hand-written CPython extension (:mod:`repro.accel.build` compiles
    ``_wheelcore.c`` locally) whose loops are line-for-line ports of the
    pure ones.  Reports are byte-identical; only wall-clock changes.

Selection is process-global and explicit: the library default is
``pure`` (overridable with the ``REPRO_ACCEL`` environment variable),
CLI verbs take ``--backend={pure,c,auto}``, and tests use the
:func:`backend` context manager.  ``auto`` resolves to ``c`` only when a
prebuilt extension for this exact source+ABI already exists — it never
compiles implicitly — so a tree without a toolchain degrades to ``pure``
silently and correctly.  ``c`` builds on demand and raises
:class:`AccelUnavailable` (with the compiler diagnostics) when it
cannot, so an explicit request is never silently downgraded.

The selected backend applies to engines built *after* selection;
existing systems keep the backend they were built with.  Checkpoints are
backend-neutral: wheel state lives in plain Python structures on both
backends, so a snapshot saved under one restores under the other (see
DESIGN.md §12).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

__all__ = [
    "AccelUnavailable",
    "BACKENDS",
    "active_backend",
    "backend",
    "build_fingerprint",
    "controller_kernels",
    "core",
    "core_dispatched_total",
    "engine_class",
    "fastpath_stats",
    "make_engine",
    "resolve_backend",
    "use_backend",
]

#: Backend names a spec may carry (``auto`` resolves to one of these).
BACKENDS = ("pure", "c")


class AccelUnavailable(RuntimeError):
    """The compiled backend was requested but cannot be provided."""


#: Loaded extension module (process-global: a CPython extension
#: initializes once per process) or None.  Tracked independently of the
#: *active* backend — events dispatched under ``c`` must keep counting
#: after a switch back to ``pure``.
_core = None

#: Resolved active backend ("pure"/"c"); None until first use so the
#: REPRO_ACCEL escape hatch is honoured lazily (import stays cheap and
#: side-effect-free).
_active: str | None = None


def _load_core(build_if_missing: bool):
    """Load (optionally building) the extension; raises AccelUnavailable."""
    global _core
    if _core is not None:
        return _core
    from repro.accel import build as build_mod

    path = build_mod.artifact_path()
    if not path.exists():
        if not build_if_missing:
            raise AccelUnavailable(
                f"no prebuilt extension at {path} (auto never compiles; "
                "run `repro accel build` or select --backend=c)"
            )
        path = build_mod.build()
    _core = build_mod.load(path)
    return _core


def resolve_backend(name: str) -> str:
    """Resolve a requested backend name to ``"pure"`` or ``"c"``.

    ``"c"`` loads the extension, building it if needed, and raises
    :class:`AccelUnavailable` when it cannot.  ``"auto"`` tries a
    prebuilt extension and falls back to ``"pure"``.
    """
    if name == "pure":
        return "pure"
    if name == "c":
        _load_core(build_if_missing=True)
        return "c"
    if name == "auto":
        try:
            _load_core(build_if_missing=False)
        except AccelUnavailable:
            return "pure"
        return "c"
    raise ValueError(
        f"unknown backend {name!r}; expected one of: pure, c, auto"
    )


def active_backend() -> str:
    """The backend new engines are built with (``"pure"`` or ``"c"``)."""
    global _active
    if _active is None:
        _active = resolve_backend(os.environ.get("REPRO_ACCEL", "pure"))
    return _active


def use_backend(name: str) -> str:
    """Select the backend for subsequently built engines; returns it resolved."""
    global _active
    _active = resolve_backend(name)
    return _active


@contextmanager
def backend(name: str) -> Iterator[str]:
    """Temporarily select a backend (resolved; restores the previous one)."""
    global _active
    previous = _active
    resolved = resolve_backend(name)
    _active = resolved
    try:
        yield resolved
    finally:
        _active = previous


def core():
    """The loaded extension module, or None (load state, not selection)."""
    return _core


def core_dispatched_total() -> int:
    """Events dispatched by compiled loops in this process (0 if none)."""
    if _core is None:
        return 0
    return _core.dispatched_total()


def fastpath_stats() -> dict:
    """Process-wide native fast-path counters (zeros when no extension).

    ``{"hits": int, "misses": int, "kinds": {tag: hits}}`` — hits are
    events a registered C kind handler executed without entering the
    interpreter; misses fell back to the Python callback path.  Pure
    dispatch loops count neither.
    """
    if _core is None:
        return {"hits": 0, "misses": 0, "kinds": {}}
    return _core.fastpath_stats()


def build_fingerprint() -> str | None:
    """Source+ABI fingerprint of the loaded extension, or None."""
    if _core is None:
        return None
    from repro.accel import build as build_mod

    return build_mod.source_fingerprint()


def engine_class() -> type:
    """The Engine class of the active backend."""
    if active_backend() == "c":
        from repro.accel.engine import c_engine_class

        return c_engine_class(_core)
    from repro.sim.engine import Engine

    return Engine


def make_engine(seed: int = 0):
    """Build an engine of the active backend (the System factory hook)."""
    return engine_class()(seed)


def controller_kernels():
    """The compiled controller-kernel module, or None under ``pure``.

    Controllers bind this at construction; a None binding selects the
    pure-Python ready scans.
    """
    if active_backend() == "c":
        return _core
    return None
