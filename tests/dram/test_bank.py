"""Unit tests for DRAM bank state."""

import pytest

from repro.dram.bank import Bank
from repro.dram.channel import DataBus
from repro.dram.timing import DramTiming, PagePolicy


def make_bank(policy=PagePolicy.CLOSED):
    return Bank(0, DramTiming(t_rcd=30, t_cl=30, t_rp=30, t_burst=8), policy)


class TestBank:
    def test_fresh_bank_is_free(self):
        assert make_bank().is_free(0)

    def test_issue_makes_busy_until_recovery(self):
        bank = make_bank()
        bank.issue(now=0, row=5, data_end=68)
        assert not bank.is_free(68)
        assert bank.is_free(68 + 30)  # closed page pays tRP
        assert bank.accesses == 1

    def test_open_page_keeps_row_and_skips_recovery(self):
        bank = make_bank(PagePolicy.OPEN)
        bank.issue(now=0, row=5, data_end=68)
        assert bank.open_row == 5
        assert bank.is_free(68)
        assert bank.is_row_hit(5) and not bank.is_row_hit(6)

    def test_closed_page_never_row_hits(self):
        bank = make_bank()
        bank.issue(now=0, row=5, data_end=68)
        assert bank.open_row is None
        assert not bank.is_row_hit(5)

    def test_prep_cycles_reflect_row_state(self):
        bank = make_bank(PagePolicy.OPEN)
        assert bank.prep_cycles(5) == 60
        bank.issue(now=0, row=5, data_end=68)
        assert bank.prep_cycles(5) == 30   # row hit
        assert bank.prep_cycles(6) == 60

    def test_row_hit_counter(self):
        bank = make_bank(PagePolicy.OPEN)
        bank.issue(now=0, row=5, data_end=10)
        bank.issue(now=20, row=5, data_end=30)
        assert bank.row_hits == 1

    def test_issue_while_busy_rejected(self):
        bank = make_bank()
        bank.issue(now=0, row=1, data_end=68)
        with pytest.raises(ValueError):
            bank.issue(now=50, row=2, data_end=118)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            Bank(0, DramTiming(), "magic")


class TestDataBus:
    def test_reserve_back_to_back(self):
        bus = DataBus(8)
        assert bus.reserve(10) == (10, 18)
        assert bus.reserve(12) == (18, 26)   # pushed behind prior burst
        assert bus.busy_cycles == 16
        assert bus.transfers == 2

    def test_reserve_after_idle_gap(self):
        bus = DataBus(8)
        bus.reserve(0)
        assert bus.reserve(100) == (100, 108)

    def test_invalid_burst(self):
        with pytest.raises(ValueError):
            DataBus(0)
