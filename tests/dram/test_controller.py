"""Unit tests for the memory controller."""

import pytest

from repro.dram.controller import MemoryController
from repro.sim.config import SystemConfig
from repro.sim.engine import Engine
from repro.sim.records import AccessType, MemoryRequest
from repro.sim.stats import Stats
from repro.sim.topology import AddressMap


def make_mc(config=None, seed=0):
    config = config or SystemConfig.small_test()
    engine = Engine(seed)
    stats = Stats()
    address_map = AddressMap(config, num_slices=config.cores)
    controller = MemoryController(engine, 0, config, address_map, stats)
    return engine, controller, stats, config


def read_req(addr, qos_id=0, created=0):
    req = MemoryRequest(addr=addr, access=AccessType.READ, qos_id=qos_id, core_id=0)
    req.created_at = created
    req.released_at = created
    return req


def write_req(addr, qos_id=0, created=0):
    req = MemoryRequest(
        addr=addr, access=AccessType.WRITEBACK, qos_id=qos_id, core_id=0
    )
    req.created_at = created
    req.released_at = created
    return req


class TestEnqueue:
    def test_accepts_until_capacity(self):
        engine, mc, stats, config = make_mc()
        for i in range(config.frontend_read_queue):
            assert mc.try_enqueue(read_req(i * 64))
        assert not mc.try_enqueue(read_req(0x999940))
        assert mc.rejects == 1
        assert stats.requests_rejected == 1

    def test_write_queue_separate_capacity(self):
        engine, mc, stats, config = make_mc()
        for i in range(config.frontend_write_queue):
            assert mc.try_enqueue(write_req(i * 64))
        assert not mc.try_enqueue(write_req(0x999940))
        # reads still accepted
        assert mc.try_enqueue(read_req(0x40))

    def test_enqueue_stamps_routing_fields(self):
        engine, mc, stats, config = make_mc()
        req = read_req(0x12340)
        mc.try_enqueue(req)
        assert req.arrived_mc_at == 0
        assert req.mc_id == 0
        assert 0 <= req.bank_id < config.banks_per_mc
        assert req.row_id >= 0


class TestServiceLifecycle:
    def test_read_completes_and_calls_back(self):
        engine, mc, stats, config = make_mc()
        done = []
        mc.on_read_complete = done.append
        req = read_req(0x40)
        mc.try_enqueue(req)
        engine.run()
        assert done == [req]
        assert req.issued_at >= 0
        assert req.completed_at >= req.issued_at + config.dram.t_burst
        assert stats.class_stats(0).bytes_read == req.size

    def test_isolated_read_latency_is_prep_plus_burst(self):
        engine, mc, stats, config = make_mc()
        req = read_req(0x40)
        mc.try_enqueue(req)
        engine.run()
        expected = config.dram.access_prep(False) + config.dram.t_burst
        assert req.completed_at == expected

    def test_many_reads_all_complete(self):
        engine, mc, stats, config = make_mc()
        count = config.frontend_read_queue
        for i in range(count):
            mc.try_enqueue(read_req(i * 64))
        engine.run()
        assert stats.class_stats(0).reads_completed == count

    def test_bus_serializes_transfers(self):
        """Total time for N reads is bounded below by N bursts."""
        engine, mc, stats, config = make_mc()
        count = 8
        for i in range(count):
            mc.try_enqueue(read_req(i * 64))
        engine.run()
        assert engine.now >= count * config.dram.t_burst
        assert stats.bus_busy_cycles == count * config.dram.t_burst

    def test_no_stall_with_queued_work(self):
        """The controller must drain any backlog without external kicks."""
        engine, mc, stats, config = make_mc()
        total = config.frontend_read_queue + config.frontend_write_queue
        for i in range(config.frontend_read_queue):
            mc.try_enqueue(read_req(i * 64))
        for i in range(config.frontend_write_queue):
            mc.try_enqueue(write_req((1000 + i) * 64))
        engine.run()
        assert mc.queued_reads == 0 and mc.queued_writes == 0
        assert stats.requests_enqueued == total


class TestWriteHandling:
    def test_writes_drain_when_no_reads(self):
        engine, mc, stats, config = make_mc()
        mc.try_enqueue(write_req(0x40))
        engine.run()
        assert stats.class_stats(0).writes_completed == 1

    def test_write_drain_mode_toggles_on_watermarks(self):
        engine, mc, stats, config = make_mc()
        # reach the high watermark: drain mode engages during the pass
        for i in range(config.write_high_watermark):
            mc.try_enqueue(write_req(i * 64))
        engine.run_until(1)
        assert mc.draining_writes or mc.queued_writes < config.write_high_watermark
        engine.run()
        assert mc.queued_writes == 0
        assert not mc.draining_writes

    def test_reads_priority_over_writes_below_watermark(self):
        engine, mc, stats, config = make_mc()
        write = write_req(0x5040)
        read = read_req(0x40)
        mc.try_enqueue(write)
        mc.try_enqueue(read)
        engine.run()
        assert read.issued_at <= write.issued_at


class TestOccupancySampling:
    def test_average_occupancy_integrates_over_time(self):
        engine, mc, stats, config = make_mc()
        # hold several reads; sample after service completes
        for i in range(4):
            mc.try_enqueue(read_req(i * 64))
        engine.run()
        occupancy = mc.sample_read_occupancy()
        assert occupancy > 0.0
        # window reset: immediately resampling an idle controller gives ~0
        engine.schedule(100, lambda: None)
        engine.run()
        assert mc.sample_read_occupancy() == pytest.approx(0.0)

    def test_empty_controller_samples_zero(self):
        engine, mc, stats, config = make_mc()
        engine.schedule(10, lambda: None)
        engine.run()
        assert mc.sample_read_occupancy() == 0.0


class TestSpaceListeners:
    def test_listener_fires_when_read_slot_frees(self):
        engine, mc, stats, config = make_mc()
        notifications = []
        mc.add_space_listener(notifications.append)
        for i in range(config.frontend_read_queue):
            mc.try_enqueue(read_req(i * 64))
        engine.run()
        assert notifications, "expected space notifications"
        assert all(mc_id == 0 for mc_id in notifications)


class TestActivityAccounting:
    def test_active_cycles_cover_service_time(self):
        engine, mc, stats, config = make_mc()
        mc.try_enqueue(read_req(0x40))
        engine.run()
        mc.finalize()
        assert mc.active_cycles == config.dram.access_prep(False) + config.dram.t_burst
        assert stats.mc_active_cycles == mc.active_cycles

    def test_efficiency_high_for_saturating_stream(self):
        # needs enough banks that the bus, not bank recovery, is the limit
        engine, mc, stats, config = make_mc(
            config=SystemConfig.default_experiment(cores=2, num_mcs=1)
        )

        # closed feedback loop: keep the queue topped up for a while
        state = {"sent": 0}

        def feed():
            while state["sent"] < 200 and mc.try_enqueue(
                read_req(state["sent"] * 64)
            ):
                state["sent"] += 1
            if state["sent"] < 200:
                engine.schedule(20, feed)

        feed()
        engine.run()
        mc.finalize()
        assert stats.memory_efficiency() > 0.7


class TestBusGate:
    """Issue is gated so bus slots are never reserved far ahead of service."""

    def test_issue_waits_for_bus_backlog_to_shrink(self):
        engine, mc, stats, config = make_mc()
        # synthetic backlog: the bus is booked well past the prep time
        backlog_end = 500
        mc.bus.reserve(backlog_end - config.dram.t_burst)
        req = read_req(0x40)
        mc.try_enqueue(req)
        engine.run()
        prep = config.dram.access_prep(row_hit=False)
        # the request must not have been issued before the gate opened
        assert req.issued_at >= backlog_end - prep
        assert req.completed_at >= backlog_end

    def test_gate_does_not_starve_with_continuous_backlog(self):
        engine, mc, stats, config = make_mc()
        for i in range(6):
            mc.try_enqueue(read_req(i * 64))
        engine.run()
        assert stats.class_stats(0).reads_completed == 6
