"""Unit tests for baseline scheduling policies."""

from repro.dram.bank import Bank
from repro.dram.schedulers import FcfsPolicy, FrFcfsPolicy, oldest_first
from repro.dram.timing import DramTiming, PagePolicy
from repro.sim.records import AccessType, MemoryRequest


def req(addr, arrived, bank=0, row=0):
    r = MemoryRequest(addr=addr, access=AccessType.READ, qos_id=0, core_id=0)
    r.arrived_mc_at = arrived
    r.bank_id = bank
    r.row_id = row
    return r


def open_banks(n=4):
    timing = DramTiming()
    return [Bank(i, timing, PagePolicy.OPEN) for i in range(n)]


class TestOldestFirst:
    def test_orders_by_arrival(self):
        a, b = req(0x0, arrived=5), req(0x40, arrived=3)
        assert oldest_first([a, b]) is b

    def test_ties_break_by_request_id(self):
        a, b = req(0x0, arrived=5), req(0x40, arrived=5)
        assert oldest_first([b, a]) is min((a, b), key=lambda r: r.req_id)


class TestFcfs:
    def test_picks_oldest(self):
        policy = FcfsPolicy()
        a, b, c = req(0, 9), req(64, 2), req(128, 7)
        assert policy.pick([a, b, c], open_banks(), now=10) is b


class TestFrFcfs:
    def test_row_hit_beats_older_miss(self):
        banks = open_banks()
        banks[0].issue(now=0, row=7, data_end=10)  # opens row 7
        older_miss = req(0x0, arrived=1, bank=0, row=3)
        newer_hit = req(0x40, arrived=5, bank=0, row=7)
        policy = FrFcfsPolicy()
        assert policy.pick([older_miss, newer_hit], banks, now=50) is newer_hit

    def test_among_row_hits_oldest_wins(self):
        banks = open_banks()
        banks[0].issue(now=0, row=7, data_end=10)
        hit_a = req(0x0, arrived=5, bank=0, row=7)
        hit_b = req(0x40, arrived=3, bank=0, row=7)
        policy = FrFcfsPolicy()
        assert policy.pick([hit_a, hit_b], banks, now=50) is hit_b

    def test_no_hits_degenerates_to_fcfs(self):
        banks = open_banks()
        a, b = req(0, 9, row=1), req(64, 2, row=2)
        assert FrFcfsPolicy().pick([a, b], banks, now=0) is b

    def test_closed_page_banks_never_produce_hits(self):
        timing = DramTiming()
        banks = [Bank(0, timing, PagePolicy.CLOSED)]
        banks[0].issue(now=0, row=7, data_end=10)
        a = req(0x0, arrived=9, bank=0, row=7)
        b = req(0x40, arrived=2, bank=0, row=3)
        assert FrFcfsPolicy().pick([a, b], banks, now=200) is b
