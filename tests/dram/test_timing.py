"""Unit tests for DDR timing parameters."""

import pytest

from repro.dram.timing import DramTiming, PagePolicy


class TestTiming:
    def test_defaults_positive(self):
        timing = DramTiming.ddr4_2400()
        assert timing.t_rcd > 0 and timing.t_burst > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            DramTiming(t_rcd=0)
        with pytest.raises(ValueError):
            DramTiming(t_burst=-1)

    def test_access_prep(self):
        timing = DramTiming(t_rcd=30, t_cl=30, t_rp=30, t_burst=8)
        assert timing.access_prep(row_hit=False) == 60
        assert timing.access_prep(row_hit=True) == 30

    def test_bank_recovery_by_policy(self):
        timing = DramTiming()
        assert timing.bank_recovery(PagePolicy.CLOSED) == timing.t_rp
        assert timing.bank_recovery(PagePolicy.OPEN) == 0

    def test_closed_page_service(self):
        timing = DramTiming(t_rcd=30, t_cl=30, t_rp=30, t_burst=8)
        assert timing.closed_page_service == 98

    def test_peak_bandwidth(self):
        timing = DramTiming(t_burst=8)
        assert timing.peak_bandwidth(64) == 8.0


class TestFrequencyScaling:
    def test_scaling_multiplies_all_timings(self):
        base = DramTiming.ddr4_2400()
        slow = base.frequency_scaled(4)
        assert slow.t_rcd == 4 * base.t_rcd
        assert slow.t_burst == 4 * base.t_burst
        assert slow.peak_bandwidth(64) == base.peak_bandwidth(64) / 4

    def test_identity_scaling(self):
        base = DramTiming.ddr4_2400()
        assert base.frequency_scaled(1) == base

    def test_invalid_divisor(self):
        with pytest.raises(ValueError):
            DramTiming().frequency_scaled(0)
