"""Unit tests for the saturation monitor (Section III-C1)."""

import pytest

from repro.core.saturation import SaturationMonitor
from repro.dram.controller import MemoryController
from repro.sim.config import SystemConfig
from repro.sim.engine import Engine
from repro.sim.records import AccessType, MemoryRequest
from repro.sim.stats import Stats
from repro.sim.topology import AddressMap


def make_controllers(count=2):
    config = SystemConfig.small_test()
    engine = Engine()
    stats = Stats()
    address_map = AddressMap(config, num_slices=config.cores)
    controllers = [
        MemoryController(engine, mc_id, config, address_map, stats)
        for mc_id in range(count)
    ]
    return engine, controllers, config


def fill_reads(engine, controller, depth, hold_cycles=2000):
    """Keep the read queue topped up to ``depth`` for ``hold_cycles``."""
    state = {"next": 0}
    deadline = engine.now + hold_cycles

    def feed():
        while len(controller.read_queue) < depth:
            req = MemoryRequest(
                addr=state["next"] * 64, access=AccessType.READ,
                qos_id=0, core_id=0,
            )
            req.created_at = engine.now
            if not controller.try_enqueue(req):
                break
            state["next"] += 1
        if engine.now < deadline:
            engine.schedule(20, feed)

    feed()
    engine.run_until(deadline)


class TestWiredOr:
    def test_idle_controllers_not_saturated(self):
        engine, controllers, _ = make_controllers()
        monitor = SaturationMonitor(controllers)
        engine.run_until(100)
        assert monitor.sample() is False
        assert monitor.last_signal is False

    def test_one_busy_controller_raises_global_sat(self):
        engine, controllers, config = make_controllers()
        monitor = SaturationMonitor(controllers)
        fill_reads(engine, controllers[0], config.frontend_read_queue)
        assert monitor.sample() is True
        assert monitor.last_occupancies[0] > monitor.last_occupancies[1]

    def test_light_load_stays_unsaturated(self):
        engine, controllers, config = make_controllers()
        monitor = SaturationMonitor(controllers)
        fill_reads(engine, controllers[0], 1)
        assert monitor.sample() is False

    def test_sampling_resets_window(self):
        engine, controllers, config = make_controllers()
        monitor = SaturationMonitor(controllers)
        fill_reads(engine, controllers[0], config.frontend_read_queue)
        assert monitor.sample() is True
        # queue has drained; a fresh idle window reads unsaturated
        engine.run_until(engine.now + 2000)
        assert monitor.sample() is False


class TestValidation:
    def test_needs_controllers(self):
        with pytest.raises(ValueError):
            SaturationMonitor([])

    def test_threshold_fraction_range(self):
        engine, controllers, _ = make_controllers()
        with pytest.raises(ValueError):
            SaturationMonitor(controllers, threshold_fraction=0.0)
        with pytest.raises(ValueError):
            SaturationMonitor(controllers, threshold_fraction=1.5)
