"""Tests for the per-controller-governor alternative (Section III-C1).

The paper's baseline broadcasts one wired-OR SAT signal; it notes that
uneven traffic can then leave controllers underutilized, and sketches the
alternative implemented here: a SAT signal per controller and a governor
per controller at every source.
"""

from dataclasses import replace

import pytest

from repro.core.config import PabstConfig
from repro.core.pabst import PabstMechanism
from repro.qos.classes import QoSRegistry
from repro.sim.config import SystemConfig
from repro.sim.system import System
from repro.workloads.stream import StreamWorkload


def make_system(per_controller: bool, skewed: bool = False, cores=4):
    config = SystemConfig.default_experiment(cores=cores, num_mcs=2)
    if skewed:
        config = replace(config, mc_interleave="low-bits")
    registry = QoSRegistry()
    registry.define_class(0, "hi", weight=3, l3_ways=8)
    registry.define_class(1, "lo", weight=1, l3_ways=8)
    workloads = {}
    for core in range(cores):
        registry.assign_core(core, 0 if core < cores // 2 else 1)
        if skewed:
            # a 128B stride over a low-bits interleave touches only even
            # lines, i.e. only controller 0 -- the hot-spot scenario
            workloads[core] = StreamWorkload(stride_bytes=128)
        else:
            workloads[core] = StreamWorkload(stride_bytes=64)
    mechanism = PabstMechanism(
        PabstConfig(per_controller_governors=per_controller)
    )
    system = System(config, registry, workloads, mechanism=mechanism)
    return system, mechanism


class TestConfigValidation:
    def test_demand_scaling_incompatible(self):
        with pytest.raises(ValueError):
            PabstConfig(per_controller_governors=True, thread_scaling="demand")


class TestAttachment:
    def test_one_governor_per_core_per_mc(self):
        system, mechanism = make_system(per_controller=True)
        assert len(mechanism.mc_governors) == 4 * 2
        assert not mechanism.governors
        assert mechanism.multiplier() >= 0

    def test_global_mode_unchanged(self):
        system, mechanism = make_system(per_controller=False)
        assert len(mechanism.governors) == 4
        assert not mechanism.mc_governors


class TestLockstep:
    def test_per_mc_groups_stay_in_lockstep(self):
        system, mechanism = make_system(per_controller=True)
        system.run_epochs(15)
        assert mechanism.multipliers_agree()


class TestSkewedTraffic:
    def test_low_bits_interleave_concentrates_stride_128(self):
        system, _ = make_system(per_controller=False, skewed=True)
        system.run_epochs(20)
        system.finalize()
        reads = [mc.reads_accepted for mc in system.controllers]
        assert reads[0] > 10 * max(1, reads[1])

    def test_per_controller_governors_decouple_hot_and_cold(self):
        """Under hot-spotted traffic, the hot controller's governor
        throttles while the cold controller's governor opens up."""
        system, mechanism = make_system(per_controller=True, skewed=True)
        system.run_epochs(40)
        hot = mechanism.mc_governors[(0, 0)].multiplier
        cold = mechanism.mc_governors[(0, 1)].multiplier
        assert hot > cold
        assert cold == 0  # nothing ever saturates the idle controller

    def test_shares_still_enforced_per_controller(self):
        system, mechanism = make_system(per_controller=True, skewed=True)
        system.run_epochs(100)
        system.finalize()
        hi = sum(e.bytes_by_class.get(0, 0) for e in system.stats.epochs[40:])
        lo = sum(e.bytes_by_class.get(1, 0) for e in system.stats.epochs[40:])
        assert hi / (hi + lo) == pytest.approx(0.75, abs=0.07)

    def test_uniform_traffic_equivalent_between_modes(self):
        """With the paper's uniform hash, both designs split ~3:1."""
        for per_controller in (False, True):
            system, _ = make_system(per_controller=per_controller)
            system.run_epochs(100)
            system.finalize()
            hi = sum(
                e.bytes_by_class.get(0, 0) for e in system.stats.epochs[40:]
            )
            lo = sum(
                e.bytes_by_class.get(1, 0) for e in system.stats.epochs[40:]
            )
            assert hi / (hi + lo) == pytest.approx(0.75, abs=0.07)
