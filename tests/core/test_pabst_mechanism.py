"""Unit/integration tests for the assembled PABST mechanism."""

import pytest

from repro.core.config import PabstConfig
from repro.core.pabst import PabstMechanism
from repro.qos.classes import QoSRegistry
from repro.sim.config import SystemConfig
from repro.sim.system import System
from repro.workloads.stream import StreamWorkload


def make_system(mechanism, cores=2, config=None):
    config = config or SystemConfig.small_test()
    registry = QoSRegistry()
    registry.define_class(0, "hi", weight=3)
    registry.define_class(1, "lo", weight=1)
    registry.assign_core(0, 0)
    registry.assign_core(1, 1)
    workloads = {core: StreamWorkload() for core in range(cores)}
    return System(config, registry, workloads, mechanism=mechanism)


class TestAttachment:
    def test_full_pabst_attaches_both_halves(self):
        mechanism = PabstMechanism()
        system = make_system(mechanism)
        assert set(mechanism.pacers) == {0, 1}
        assert set(mechanism.governors) == {0, 1}
        assert set(mechanism.arbiters) == {0}
        assert system.controllers[0].policy is mechanism.arbiters[0]
        assert mechanism.name == "pabst"

    def test_governor_only(self):
        mechanism = PabstMechanism(enable_arbiter=False)
        system = make_system(mechanism)
        assert mechanism.pacers and not mechanism.arbiters
        assert mechanism.name == "source-only"
        assert system.controllers[0].policy is not None

    def test_arbiter_only(self):
        mechanism = PabstMechanism(enable_governor=False)
        make_system(mechanism)
        assert mechanism.arbiters and not mechanism.pacers
        assert mechanism.name == "target-only"
        assert mechanism.multiplier() == -1

    def test_neither_half_degenerates_to_none(self):
        mechanism = PabstMechanism(enable_governor=False, enable_arbiter=False)
        make_system(mechanism)
        assert mechanism.name == "none"


class TestEpochPropagation:
    def test_epoch_updates_every_governor_in_lockstep(self):
        mechanism = PabstMechanism()
        system = make_system(mechanism)
        system.run_epochs(10)
        assert mechanism.multipliers_agree()
        assert mechanism.multiplier() >= 0

    def test_multiplier_reported_in_epoch_samples(self):
        mechanism = PabstMechanism()
        system = make_system(mechanism)
        system.run_epochs(5)
        assert all(e.multiplier >= 0 for e in system.stats.epochs)

    def test_custom_config_flows_through(self):
        config = PabstConfig(inertia=2, burst_requests=4)
        mechanism = PabstMechanism(config=config)
        make_system(mechanism)
        governor = next(iter(mechanism.governors.values()))
        assert governor.monitor._config.inertia == 2


class TestEndToEndShares:
    def test_shares_track_weights_on_small_system(self):
        mechanism = PabstMechanism()
        config = SystemConfig.default_experiment(cores=4, num_mcs=1)
        registry = QoSRegistry()
        registry.define_class(0, "hi", weight=3, l3_ways=8)
        registry.define_class(1, "lo", weight=1, l3_ways=8)
        for core in range(4):
            registry.assign_core(core, 0 if core < 2 else 1)
        workloads = {core: StreamWorkload() for core in range(4)}
        system = System(config, registry, workloads, mechanism=mechanism)
        system.run_epochs(80)
        system.finalize()
        hi = sum(e.bytes_by_class.get(0, 0) for e in system.stats.epochs[30:])
        lo = sum(e.bytes_by_class.get(1, 0) for e in system.stats.epochs[30:])
        assert hi / (hi + lo) == pytest.approx(0.75, abs=0.06)
