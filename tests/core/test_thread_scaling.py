"""Tests for the Section V-B heterogeneous thread-scaling extension."""

import pytest

from repro.core.config import PabstConfig
from repro.core.pabst import PabstMechanism
from repro.qos.classes import QoSRegistry
from repro.sim.config import SystemConfig
from repro.sim.system import System
from repro.workloads.stream import StreamWorkload


def run_scenario(thread_scaling: str, epochs=120):
    """Class 0: one busy + one nearly idle thread.  Class 1: saturating.

    Both classes have equal weights; the question is whether class 0's
    busy thread can use the half of its class allocation that its idle
    sibling leaves on the table.
    """
    from dataclasses import replace

    # generous MSHRs so the busy thread is pacer-bound, not MLP-bound --
    # otherwise intra-class scaling has nothing to redistribute
    config = replace(
        SystemConfig.default_experiment(cores=4, num_mcs=2), l2_mshrs=48
    )
    registry = QoSRegistry()
    registry.define_class(0, "asym", weight=1, l3_ways=8)
    registry.define_class(1, "busy", weight=1, l3_ways=8)
    workloads = {
        0: StreamWorkload(contexts=48),           # busy thread
        1: StreamWorkload(gap=4000, contexts=1),  # nearly idle thread
        2: StreamWorkload(),
        3: StreamWorkload(),
    }
    for core, qos in ((0, 0), (1, 0), (2, 1), (3, 1)):
        registry.assign_core(core, qos)
    mechanism = PabstMechanism(PabstConfig(thread_scaling=thread_scaling))
    system = System(config, registry, workloads, mechanism=mechanism)
    system.run_epochs(epochs)
    system.finalize()
    share = 0
    total = 0
    for sample in system.stats.epochs[40:]:
        for qos, count in sample.bytes_by_class.items():
            total += count
            if qos == 0:
                share += count
    return share / total if total else 0.0, mechanism


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            PabstConfig(thread_scaling="static")
        assert PabstConfig(thread_scaling="demand").thread_scaling == "demand"

    def test_default_is_papers_equal_split(self):
        assert PabstConfig().thread_scaling == "equal"


class TestDemandScaling:
    def test_equal_split_gives_both_threads_the_same_period(self):
        _, mechanism = run_scenario("equal")
        busy = mechanism.pacers[0].period_cycles
        idle = mechanism.pacers[1].period_cycles
        assert busy == pytest.approx(idle)

    def test_demand_scaling_shifts_period_to_the_idle_thread(self):
        _, mechanism = run_scenario("demand")
        busy = mechanism.pacers[0].period_cycles
        idle = mechanism.pacers[1].period_cycles
        # the quiet thread's period stretches (up to the restart cap) while
        # the busy thread absorbs nearly the whole class rate
        assert idle > 8 * busy

    def test_demand_scaling_never_hurts_the_class_share(self):
        equal_share, _ = run_scenario("equal")
        demand_share, _ = run_scenario("demand")
        assert demand_share >= equal_share - 0.01
        # and recovers at least part of the stranded half-share
        assert demand_share > equal_share + 0.01

    def test_demand_estimator_resets_each_epoch(self):
        _, mechanism = run_scenario("demand", epochs=10)
        # after the last epoch's rescale the counters restart from zero
        for pacer in mechanism.pacers.values():
            assert pacer.take_epoch_demand() >= 0
