"""Unit tests for the priority arbiter (Section III-C2)."""

import pytest

from repro.core.arbiter import PriorityArbiter
from repro.dram.bank import Bank
from repro.dram.timing import DramTiming, PagePolicy
from repro.qos.classes import QoSRegistry
from repro.sim.records import AccessType, MemoryRequest


def make_registry(weights={0: 3, 1: 1}):
    registry = QoSRegistry()
    for qos_id, weight in weights.items():
        registry.define_class(qos_id, f"c{qos_id}", weight=weight)
    return registry


def make_arbiter(weights={0: 3, 1: 1}, slack=None, row_hits_first=True):
    registry = make_registry(weights)
    slack = slack if slack is not None else 8 * registry.stride_scale
    return PriorityArbiter(registry, slack=slack, row_hits_first=row_hits_first), registry


def read(qos_id, arrived=0, bank=0, row=0, addr=0x40):
    req = MemoryRequest(addr=addr, access=AccessType.READ, qos_id=qos_id, core_id=0)
    req.arrived_mc_at = arrived
    req.bank_id = bank
    req.row_id = row
    return req


def write(qos_id, arrived=0, bank=0):
    req = MemoryRequest(
        addr=0x80, access=AccessType.WRITEBACK, qos_id=qos_id, core_id=0
    )
    req.arrived_mc_at = arrived
    req.bank_id = bank
    return req


def closed_banks(n=4):
    return [Bank(i, DramTiming(), PagePolicy.CLOSED) for i in range(n)]


class TestVirtualClocks:
    def test_clock_advances_by_stride_per_read(self):
        arbiter, registry = make_arbiter()
        for _ in range(3):
            arbiter.on_accept(read(0), now=0)
        assert arbiter.virtual_clock(0) == 3 * registry.stride(0)

    def test_deadline_equals_clock_at_accept(self):
        arbiter, registry = make_arbiter()
        req = read(0)
        arbiter.on_accept(req, now=0)
        assert req.virtual_deadline == registry.stride(0)

    def test_writes_not_charged(self):
        arbiter, registry = make_arbiter()
        arbiter.on_accept(write(0), now=0)
        assert arbiter.virtual_clock(0) == 0

    def test_lighter_class_accumulates_faster(self):
        arbiter, registry = make_arbiter({0: 4, 1: 1})
        a, b = read(0), read(1)
        arbiter.on_accept(a, now=0)
        arbiter.on_accept(b, now=0)
        assert b.virtual_deadline > a.virtual_deadline


class TestSlackCap:
    def test_idle_class_deadline_capped(self):
        arbiter, registry = make_arbiter()
        slack = 8 * registry.stride_scale
        # class 1 consumes heavily, pushing virtual time forward
        for _ in range(64):
            req = read(1)
            arbiter.on_accept(req, now=0)
            arbiter.pick([req], closed_banks(), now=0)
        newcomer = read(0)
        arbiter.on_accept(newcomer, now=0)
        assert newcomer.virtual_deadline >= arbiter.last_picked_deadline - slack
        assert arbiter.capped_deadlines >= 1

    def test_cap_written_back_to_clock(self):
        arbiter, registry = make_arbiter()
        for _ in range(64):
            req = read(1)
            arbiter.on_accept(req, now=0)
            arbiter.pick([req], closed_banks(), now=0)
        newcomer = read(0)
        arbiter.on_accept(newcomer, now=0)
        assert arbiter.virtual_clock(0) == newcomer.virtual_deadline

    def test_slack_validation(self):
        with pytest.raises(ValueError):
            PriorityArbiter(make_registry(), slack=0)


class TestPick:
    def test_earliest_deadline_first(self):
        arbiter, _ = make_arbiter({0: 3, 1: 1})
        hi = read(0)
        lo = read(1)
        arbiter.on_accept(hi, now=0)
        arbiter.on_accept(lo, now=0)
        assert arbiter.pick([lo, hi], closed_banks(), now=0) is hi

    def test_pick_advances_last_picked(self):
        arbiter, _ = make_arbiter()
        req = read(0)
        arbiter.on_accept(req, now=0)
        arbiter.pick([req], closed_banks(), now=0)
        assert arbiter.last_picked_deadline == req.virtual_deadline

    def test_ties_break_by_arrival(self):
        arbiter, _ = make_arbiter({0: 1, 1: 1})
        early = read(0, arrived=1)
        late = read(1, arrived=9)
        arbiter.on_accept(early, now=1)
        arbiter.on_accept(late, now=9)
        if early.virtual_deadline == late.virtual_deadline:
            assert arbiter.pick([late, early], closed_banks(), now=10) is early

    def test_writes_served_in_arrival_order(self):
        arbiter, _ = make_arbiter()
        a = write(0, arrived=5)
        b = write(1, arrived=2)
        assert arbiter.pick([a, b], closed_banks(), now=10) is b

    def test_row_hits_preferred_when_enabled(self):
        arbiter, _ = make_arbiter({0: 3, 1: 1})
        banks = [Bank(0, DramTiming(), PagePolicy.OPEN)]
        banks[0].issue(now=0, row=7, data_end=8)
        miss_hi = read(0, bank=0, row=3)
        hit_lo = read(1, bank=0, row=7)
        arbiter.on_accept(miss_hi, now=0)
        arbiter.on_accept(hit_lo, now=0)
        assert arbiter.pick([miss_hi, hit_lo], banks, now=60) is hit_lo

    def test_row_hits_ignored_when_disabled(self):
        arbiter, _ = make_arbiter({0: 3, 1: 1}, row_hits_first=False)
        banks = [Bank(0, DramTiming(), PagePolicy.OPEN)]
        banks[0].issue(now=0, row=7, data_end=8)
        miss_hi = read(0, bank=0, row=3)
        hit_lo = read(1, bank=0, row=7)
        arbiter.on_accept(miss_hi, now=0)
        arbiter.on_accept(hit_lo, now=0)
        assert arbiter.pick([miss_hi, hit_lo], banks, now=60) is miss_hi


class TestFairnessProperty:
    def test_service_ratio_tracks_weights_under_backlog(self):
        """Serving EDF from a saturated queue yields weight-ratio service."""
        arbiter, registry = make_arbiter({0: 3, 1: 1})
        banks = closed_banks()
        backlog = {0: [], 1: []}
        served = {0: 0, 1: 0}
        for qos_id in (0, 1):
            for _ in range(400):
                req = read(qos_id)
                arbiter.on_accept(req, now=0)
                backlog[qos_id].append(req)
        for _ in range(200):
            candidates = [q[0] for q in backlog.values() if q]
            choice = arbiter.pick(candidates, banks, now=0)
            backlog[choice.qos_id].pop(0)
            served[choice.qos_id] += 1
        assert served[0] / served[1] == pytest.approx(3.0, rel=0.15)
