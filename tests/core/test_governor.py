"""Unit and property tests for the governor state machine (Tables I-II).

These tests pin down the mechanism invariants the paper states in prose:
M moves against the SAT signal, delta-M shrinks on direction flips and
grows after `inertia` stable epochs, state stays in small integers, and —
the distributed-lockstep property — identical inputs produce identical
state on independent instances.
"""

import pytest
from hypothesis import given, strategies as st

from repro.core.config import PabstConfig
from repro.core.governor import Governor, SystemMonitor
from repro.core.pacer import Pacer
from repro.qos.classes import QoSRegistry
from repro.sim.engine import Engine


def make_monitor(**kwargs):
    return SystemMonitor(PabstConfig(**kwargs))


class TestDirection:
    def test_m_rises_on_saturation(self):
        monitor = make_monitor(m_init=10)
        monitor.on_epoch(saturated=True)
        assert monitor.m > 10

    def test_m_falls_when_unsaturated(self):
        monitor = make_monitor(m_init=10)
        monitor.on_epoch(saturated=False)
        assert monitor.m < 10

    def test_m_never_negative(self):
        monitor = make_monitor(m_init=0)
        for _ in range(10):
            monitor.on_epoch(saturated=False)
        assert monitor.m == 0

    def test_m_capped_at_max(self):
        monitor = make_monitor(m_init=0, m_max=100)
        for _ in range(200):
            monitor.on_epoch(saturated=True)
        assert monitor.m == 100


class TestDeltaM:
    def test_dm_grows_exponentially_after_inertia(self):
        monitor = make_monitor(inertia=3)
        dms = []
        for _ in range(8):
            monitor.on_epoch(saturated=True)
            dms.append(monitor.dm)
        # once E reaches inertia the step doubles every epoch
        assert dms[-1] > dms[2]
        assert dms[-1] == min(2 * dms[-2], PabstConfig().dm_max)

    def test_dm_shrinks_on_direction_flip(self):
        monitor = make_monitor(inertia=2)
        for _ in range(6):
            monitor.on_epoch(saturated=True)
        grown = monitor.dm
        monitor.on_epoch(saturated=False)
        assert monitor.dm == max(1, grown >> 2)

    def test_dm_floor_is_one(self):
        monitor = make_monitor()
        for saturated in (True, False, True, False, True, False):
            monitor.on_epoch(saturated)
        assert monitor.dm >= 1

    def test_dm_capped(self):
        monitor = make_monitor(dm_max=16)
        for _ in range(50):
            monitor.on_epoch(saturated=True)
        assert monitor.dm == 16

    def test_noisy_sat_keeps_steps_small(self):
        """Alternating SAT (system near equilibrium) pins delta-M low."""
        monitor = make_monitor()
        for i in range(40):
            monitor.on_epoch(saturated=bool(i % 2))
        assert monitor.dm <= 2

    def test_e_resets_on_flip(self):
        monitor = make_monitor()
        for _ in range(5):
            monitor.on_epoch(saturated=True)
        assert monitor.e >= 4
        monitor.on_epoch(saturated=False)
        assert monitor.e == 0


class TestPhase:
    def test_phase_labels(self):
        monitor = make_monitor(inertia=2)
        monitor.on_epoch(saturated=False)
        assert monitor.phase.startswith("rate-up")
        for _ in range(4):
            monitor.on_epoch(saturated=True)
        assert monitor.phase.startswith("rate-down")
        assert monitor.phase.endswith("dm-up")


class TestLockstep:
    @given(sat=st.lists(st.booleans(), min_size=1, max_size=200))
    def test_identical_inputs_give_identical_state(self, sat):
        """The paper's distributed-governor claim (Section III-B)."""
        monitors = [make_monitor() for _ in range(4)]
        for signal in sat:
            for monitor in monitors:
                monitor.on_epoch(signal)
        states = {(m.m, m.dm, m.e, m.rate_direction_up) for m in monitors}
        assert len(states) == 1

    @given(sat=st.lists(st.booleans(), min_size=1, max_size=300))
    def test_state_stays_in_small_integers(self, sat):
        """Implementable with shifts/adds on small registers (III-D)."""
        config = PabstConfig()
        monitor = SystemMonitor(config)
        for signal in sat:
            monitor.on_epoch(signal)
            assert 0 <= monitor.m <= config.m_max
            assert 1 <= monitor.dm <= config.dm_max


class TestGovernorRateGeneration:
    def _make(self, weight_hi=3, weight_lo=1, threads=2):
        registry = QoSRegistry()
        registry.define_class(0, "hi", weight=weight_hi)
        registry.define_class(1, "lo", weight=weight_lo)
        for core in range(threads):
            registry.assign_core(core, 0)
        for core in range(threads, 2 * threads):
            registry.assign_core(core, 1)
        engine = Engine()
        config = PabstConfig()
        governors = []
        for core in range(2 * threads):
            qos_id = registry.class_of_core(core)
            pacer = Pacer(engine, registry.stride_scale)
            governors.append(Governor(core, qos_id, registry, config, pacer))
        return governors, registry

    def test_periods_inverse_to_weights(self):
        """Eq. 5: rates stay proportional to weights at any M."""
        governors, registry = self._make(weight_hi=3, weight_lo=1)
        for governor in governors:
            for _ in range(5):
                governor.on_epoch(saturated=True)
        hi = next(g for g in governors if g.qos_id == 0)
        lo = next(g for g in governors if g.qos_id == 1)
        assert hi.multiplier == lo.multiplier
        ratio = lo.source_period_numerator() / hi.source_period_numerator()
        assert ratio == pytest.approx(3.0, rel=0.02)

    def test_period_scales_with_thread_count(self):
        governors, registry = self._make(threads=2)
        hi = next(g for g in governors if g.qos_id == 0)
        hi.monitor.m = 10
        base = hi.source_period_numerator()
        registry.assign_core(99, 0)  # third thread joins the class
        assert hi.source_period_numerator() == pytest.approx(base * 3 / 2)

    def test_epoch_pushes_period_into_pacer(self):
        governors, _ = self._make()
        governor = governors[0]
        governor.on_epoch(saturated=True)
        expected = governor.source_period_numerator()
        assert governor.pacer.period_cycles == pytest.approx(
            expected / governor.pacer.f_scale
        )

    def test_m_zero_means_unthrottled(self):
        governors, _ = self._make()
        governor = governors[0]
        governor.on_epoch(saturated=False)
        assert governor.multiplier == 0
        assert governor.source_period_numerator() == 0
