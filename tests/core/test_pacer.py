"""Unit and property tests for the pacer (Section III-B3)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.pacer import Pacer
from repro.sim.engine import Engine
from repro.sim.records import AccessType, MemoryRequest


def make_pacer(f_scale=16, burst=16):
    engine = Engine()
    return engine, Pacer(engine, f_scale, burst_requests=burst)


def req(addr=0x40):
    return MemoryRequest(addr=addr, access=AccessType.READ, qos_id=0, core_id=0)


class Collector:
    def __init__(self):
        self.times = []

    def release(self, engine):
        return lambda: self.times.append(engine.now)


class TestUnthrottled:
    def test_zero_period_releases_immediately(self):
        engine, pacer = make_pacer()
        pacer.set_period(0)
        released = Collector()
        for _ in range(5):
            pacer.request(req(), released.release(engine))
        assert released.times == [0] * 5
        assert pacer.released == 5 and pacer.throttled == 0


class TestPacing:
    def test_requests_spaced_by_period(self):
        engine, pacer = make_pacer(f_scale=1)
        pacer.set_period(10)  # 10 cycles between requests
        released = Collector()
        for _ in range(4):
            pacer.request(req(), released.release(engine))
        engine.run()
        # first free (full credit), then spaced as credit burns
        assert released.times[0] == 0
        assert released.times == sorted(released.times)
        assert len(released.times) == 4

    def test_sustained_rate_matches_period(self):
        engine, pacer = make_pacer(f_scale=1, burst=1)
        pacer.set_period(10)
        released = Collector()
        for _ in range(20):
            pacer.request(req(), released.release(engine))
        engine.run()
        # with no credit allowance, long-run spacing is the period
        assert released.times[-1] >= 10 * 19 - 10

    def test_fractional_period_accumulates_without_drift(self):
        engine, pacer = make_pacer(f_scale=4, burst=1)
        pacer.set_period(10)  # 2.5 cycles per request
        released = Collector()
        for _ in range(41):
            pacer.request(req(), released.release(engine))
        engine.run()
        # 40 intervals x 2.5 cycles = 100 cycles, exactly
        assert released.times[-1] == 100

    def test_fifo_order_preserved(self):
        engine, pacer = make_pacer(f_scale=1, burst=1)
        pacer.set_period(5)
        order = []
        for tag in range(5):
            pacer.request(req(), lambda tag=tag: order.append(tag))
        engine.run()
        assert order == [0, 1, 2, 3, 4]


class TestCredit:
    def test_idle_time_builds_bounded_credit(self):
        engine, pacer = make_pacer(f_scale=1, burst=4)
        pacer.set_period(10)
        engine.schedule(1000, lambda: None)
        engine.run()  # idle for a long time
        released = Collector()
        for _ in range(8):
            pacer.request(req(), released.release(engine))
        engine.run()
        burst_now = sum(1 for t in released.times if t == 1000)
        # banked credit (4 requests) plus the one currently due
        assert burst_now == 5
        assert max(released.times) > 1000

    def test_credit_cannot_exceed_burst_even_after_undo_storm(self):
        engine, pacer = make_pacer(f_scale=1, burst=2)
        pacer.set_period(10)
        for _ in range(50):
            pacer.uncharge()
        released = Collector()
        for _ in range(6):
            pacer.request(req(), released.release(engine))
        engine.run()
        immediate = sum(1 for t in released.times if t == 0)
        assert immediate <= 3  # 2 credit + the one period boundary at t=0


class TestCacheFilterAccounting:
    def test_uncharge_refunds_a_period(self):
        engine, pacer = make_pacer(f_scale=1, burst=1)
        pacer.set_period(10)
        released = Collector()
        pacer.request(req(), released.release(engine))   # consumes credit
        pacer.request(req(), released.release(engine))   # would wait to t=10
        pacer.uncharge()                                 # L3 hit: refund
        engine.run()
        assert released.times == [0, 0]

    def test_writeback_charge_adds_a_period(self):
        engine, pacer = make_pacer(f_scale=1, burst=1)
        pacer.set_period(10)
        released = Collector()
        pacer.request(req(), released.release(engine))
        pacer.charge_writeback()
        pacer.request(req(), released.release(engine))
        engine.run()
        assert released.times[1] == 20  # one extra period of delay


class TestPeriodChanges:
    """C_next is an absolute timestamp: a period change from the governor
    affects future charges, not credit already spent (hardware semantics)."""

    def test_new_shorter_period_applies_to_subsequent_charges(self):
        engine, pacer = make_pacer(f_scale=1, burst=1)
        pacer.set_period(100)
        released = Collector()
        for _ in range(3):
            pacer.request(req(), released.release(engine))
        engine.run_until(10)
        pacer.set_period(5)
        engine.run()
        # the already-charged period still gates the second request...
        assert released.times[1] == 100
        # ...but the third is spaced by the new, shorter period
        assert released.times[2] == 105

    def test_new_longer_period_applies_to_subsequent_charges(self):
        engine, pacer = make_pacer(f_scale=1, burst=1)
        pacer.set_period(10)
        released = Collector()
        for _ in range(3):
            pacer.request(req(), released.release(engine))
        engine.run_until(2)
        pacer.set_period(100)
        engine.run()
        assert released.times[1] == 10    # old charge
        assert released.times[2] == 110   # new period applied at release

    def test_validation(self):
        engine = Engine()
        with pytest.raises(ValueError):
            Pacer(engine, 0)
        with pytest.raises(ValueError):
            Pacer(engine, 16, burst_requests=0)
        _, pacer = make_pacer()
        with pytest.raises(ValueError):
            pacer.set_period(-1)


@settings(max_examples=30, deadline=None)
@given(
    period=st.integers(min_value=1, max_value=64),
    count=st.integers(min_value=2, max_value=40),
    burst=st.integers(min_value=1, max_value=8),
)
def test_property_long_run_rate_never_exceeds_allocation(period, count, burst):
    """Within any long window the pacer never over-releases its rate."""
    engine, pacer = make_pacer(f_scale=1, burst=burst)
    pacer.set_period(period)
    released = Collector()
    for _ in range(count):
        pacer.request(req(), released.release(engine))
    engine.run()
    elapsed = max(released.times)
    # releases <= credit burst + elapsed/period + the t=0 release
    assert count <= burst + elapsed / period + 1
    assert released.times == sorted(released.times)
