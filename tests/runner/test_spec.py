"""Tests for RunSpec hashing and grid expansion."""

from repro.runner.spec import RunSpec, specs_for_figure


class TestSpecHash:
    def test_hash_is_stable_across_equivalent_spellings(self):
        a = RunSpec(figure="fig07", cell={"mixes": ("stream",)})
        b = RunSpec(figure="fig07", cell={"mixes": ["stream"]})
        assert a.spec_hash() == b.spec_hash()

    def test_hash_changes_with_every_field(self):
        base = RunSpec(figure="fig05", seed=0, quick=True)
        assert base.spec_hash() != RunSpec(figure="fig06").spec_hash()
        assert base.spec_hash() != RunSpec(figure="fig05", seed=1).spec_hash()
        assert base.spec_hash() != RunSpec(figure="fig05", quick=False).spec_hash()
        assert (
            base.spec_hash()
            != RunSpec(figure="fig05", overrides={"epoch_cycles": 500}).spec_hash()
        )
        assert (
            base.spec_hash()
            != RunSpec(figure="fig05", cell={"workloads": ("mcf",)}).spec_hash()
        )

    def test_hash_independent_of_key_order(self):
        a = RunSpec(figure="fig07", cell={"a": 1, "b": 2})
        b = RunSpec(figure="fig07", cell={"b": 2, "a": 1})
        assert a.spec_hash() == b.spec_hash()

    def test_hash_changes_with_shard_count(self):
        """A determinism bug in the shard runner must surface as a report
        diff, never be papered over by a cache hit recorded under a
        different shard count."""
        hashes = {
            RunSpec(figure="fig05", shards=shards).spec_hash()
            for shards in (1, 2, 4)
        }
        assert len(hashes) == 3

    def test_partition_scheme_pinned_in_canonical_json(self):
        import json

        from repro.sim.shard import ShardPlan

        payload = json.loads(RunSpec(figure="fig05", shards=2).canonical_json())
        assert payload["sharding"] == {
            "shards": 2,
            "partition": ShardPlan.SCHEME,
        }

    def test_sharded_payload_roundtrip(self):
        spec = RunSpec(figure="fig05", shards=4)
        again = RunSpec.from_payload(spec.to_payload())
        assert again.shards == 4
        assert again.spec_hash() == spec.spec_hash()

    def test_payload_without_shards_defaults_to_single_process(self):
        """Payloads written before the sharding field existed must load."""
        spec = RunSpec(figure="fig05")
        payload = spec.to_payload()
        del payload["shards"]
        assert RunSpec.from_payload(payload).spec_hash() == spec.spec_hash()

    def test_hash_changes_with_backend(self):
        """Backends are byte-identical by contract, but a determinism bug
        in the compiled core must surface as a report diff, never be
        papered over by a cache hit recorded under the other backend."""
        hashes = {
            RunSpec(figure="fig05", backend=backend).spec_hash()
            for backend in ("pure", "c")
        }
        assert len(hashes) == 2

    def test_backend_pinned_in_canonical_json(self):
        import json

        payload = json.loads(RunSpec(figure="fig05", backend="c").canonical_json())
        assert payload["backend"] == "c"

    def test_backend_payload_roundtrip(self):
        spec = RunSpec(figure="fig05", backend="c")
        again = RunSpec.from_payload(spec.to_payload())
        assert again.backend == "c"
        assert again.spec_hash() == spec.spec_hash()

    def test_payload_without_backend_defaults_to_pure(self):
        """Payloads written before the backend field existed ran pure."""
        spec = RunSpec(figure="fig05")
        payload = spec.to_payload()
        del payload["backend"]
        assert RunSpec.from_payload(payload).spec_hash() == spec.spec_hash()

    def test_warmup_group_key_is_backend_free(self):
        """Checkpoints are backend-neutral, so specs differing only in
        backend share one warm-up prefix."""
        pure = RunSpec(figure="fig05", backend="pure")
        compiled = RunSpec(figure="fig05", backend="c")
        assert pure.warmup_group_key() == compiled.warmup_group_key()

    def test_payload_roundtrip(self):
        spec = RunSpec(
            figure="fig07",
            cell={"mixes": ("stream",), "mechanisms": ("pabst",)},
            seed=3,
            quick=False,
            overrides={"epoch_cycles": 1000},
        )
        again = RunSpec.from_payload(spec.to_payload())
        assert again.spec_hash() == spec.spec_hash()

    def test_hash_changes_with_cell_mechanism(self):
        """Arena cells carry the mechanism name in the cell, so two
        head-to-heads differing only in mechanism must never share a
        cache entry."""
        hashes = {
            RunSpec(
                figure="arena",
                cell={"scenarios": ("stream",), "mechanisms": (name,)},
            ).spec_hash()
            for name in ("pabst", "dpq", "perbank", "none")
        }
        assert len(hashes) == 4


class TestSpecsForFigure:
    def test_fig07_quick_grid_has_six_cells(self):
        specs = specs_for_figure("fig07", quick=True)
        assert len(specs) == 6
        assert len({spec.spec_hash() for spec in specs}) == 6

    def test_single_cell_figures(self):
        for figure in ("fig06", "fig08"):
            specs = specs_for_figure(figure, quick=True)
            assert len(specs) == 1
            assert specs[0].cell == {}

    def test_fig05_measurement_grid(self):
        """fig05 sweeps the measurement window; all cells share one
        warm-up prefix, so a warm-started sweep pays warm-up once."""
        specs = specs_for_figure("fig05", quick=True)
        assert len(specs) == 9
        assert len({spec.spec_hash() for spec in specs}) == 9
        assert len({spec.warmup_group_key() for spec in specs}) == 1

    def test_every_figure_expands(self):
        from repro.cli import EXPERIMENTS

        for figure in EXPERIMENTS:
            specs = specs_for_figure(figure, quick=True)
            assert specs, figure
            assert all(spec.figure == figure for spec in specs)

    def test_label_is_compact(self):
        spec = specs_for_figure("fig10", quick=True)[0]
        assert spec.label() == "fig10[libquantum]"
