"""Tests for the on-disk result cache and source fingerprint."""

from repro.runner.cache import ResultCache
from repro.runner.fingerprint import source_fingerprint
from repro.runner.spec import RunSpec


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        spec = RunSpec(figure="fig05")
        result = {"ok": True, "report": "table\n", "events": 123}
        cache.store(spec.spec_hash(), "f" * 16, spec.canonical_json(), result)
        assert cache.load(spec.spec_hash(), "f" * 16) == result
        assert len(cache) == 1

    def test_miss_on_unknown_spec(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        assert cache.load("0" * 16, "f" * 16) is None

    def test_miss_on_different_fingerprint(self, tmp_path):
        """A source change must invalidate every cached result."""
        cache = ResultCache(tmp_path / "cache")
        spec = RunSpec(figure="fig05")
        cache.store(spec.spec_hash(), "a" * 16, spec.canonical_json(), {"ok": True})
        assert cache.load(spec.spec_hash(), "b" * 16) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        spec = RunSpec(figure="fig05")
        path = cache.store(
            spec.spec_hash(), "f" * 16, spec.canonical_json(), {"ok": True}
        )
        path.write_text("{not json", encoding="utf-8")
        assert cache.load(spec.spec_hash(), "f" * 16) is None

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        spec = RunSpec(figure="fig05")
        cache.store(spec.spec_hash(), "f" * 16, spec.canonical_json(), {"ok": True})
        assert cache.clear() == 1
        assert len(cache) == 0


class TestSourceFingerprint:
    def test_stable_within_process(self):
        assert source_fingerprint() == source_fingerprint()

    def test_sensitive_to_content(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        before = source_fingerprint(tmp_path)
        (tmp_path / "a.py").write_text("x = 2\n")
        # bypass the per-root memo by re-reading through a fresh module state
        import repro.runner.fingerprint as fp

        fp._cached = None
        after = source_fingerprint(tmp_path)
        assert before != after
