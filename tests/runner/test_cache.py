"""Tests for the on-disk result cache and source fingerprint."""

from repro.runner.cache import ResultCache
from repro.runner.fingerprint import source_fingerprint
from repro.runner.spec import RunSpec


class TestResultCache:
    def test_roundtrip(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        spec = RunSpec(figure="fig05")
        result = {"ok": True, "report": "table\n", "events": 123}
        cache.store(spec.spec_hash(), "f" * 16, spec.canonical_json(), result)
        assert cache.load(spec.spec_hash(), "f" * 16) == result
        assert len(cache) == 1

    def test_miss_on_unknown_spec(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        assert cache.load("0" * 16, "f" * 16) is None

    def test_miss_on_different_fingerprint(self, tmp_path):
        """A source change must invalidate every cached result."""
        cache = ResultCache(tmp_path / "cache")
        spec = RunSpec(figure="fig05")
        cache.store(spec.spec_hash(), "a" * 16, spec.canonical_json(), {"ok": True})
        assert cache.load(spec.spec_hash(), "b" * 16) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        spec = RunSpec(figure="fig05")
        path = cache.store(
            spec.spec_hash(), "f" * 16, spec.canonical_json(), {"ok": True}
        )
        path.write_text("{not json", encoding="utf-8")
        assert cache.load(spec.spec_hash(), "f" * 16) is None

    def test_clear(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        spec = RunSpec(figure="fig05")
        cache.store(spec.spec_hash(), "f" * 16, spec.canonical_json(), {"ok": True})
        assert cache.clear() == 1
        assert len(cache) == 0

    def test_lru_eviction_drops_oldest(self, tmp_path):
        import os

        cache = ResultCache(tmp_path / "cache", max_entries=2)
        specs = [RunSpec(figure="fig05", seed=seed) for seed in range(3)]
        for age, spec in enumerate(specs[:2]):
            path = cache.store(
                spec.spec_hash(), "f" * 16, spec.canonical_json(), {"ok": True}
            )
            os.utime(path, (age, age))  # pin distinct, old mtimes
        cache.store(
            specs[2].spec_hash(), "f" * 16, specs[2].canonical_json(), {"ok": True}
        )
        assert len(cache) == 2
        assert cache.load(specs[0].spec_hash(), "f" * 16) is None
        assert cache.load(specs[2].spec_hash(), "f" * 16) is not None

    def test_load_refreshes_recency(self, tmp_path):
        import os

        cache = ResultCache(tmp_path / "cache", max_entries=2)
        specs = [RunSpec(figure="fig05", seed=seed) for seed in range(3)]
        for age, spec in enumerate(specs[:2]):
            path = cache.store(
                spec.spec_hash(), "f" * 16, spec.canonical_json(), {"ok": True}
            )
            os.utime(path, (age, age))
        # a hit on the oldest entry makes it the newest...
        assert cache.load(specs[0].spec_hash(), "f" * 16) is not None
        cache.store(
            specs[2].spec_hash(), "f" * 16, specs[2].canonical_json(), {"ok": True}
        )
        # ...so the eviction takes the other entry instead
        assert cache.load(specs[0].spec_hash(), "f" * 16) is not None
        assert cache.load(specs[1].spec_hash(), "f" * 16) is None

    def test_unbounded_when_cap_disabled(self, tmp_path):
        cache = ResultCache(tmp_path / "cache", max_entries=None)
        for seed in range(5):
            spec = RunSpec(figure="fig05", seed=seed)
            cache.store(
                spec.spec_hash(), "f" * 16, spec.canonical_json(), {"ok": True}
            )
        assert len(cache) == 5

    def test_stats(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        assert cache.stats()["entries"] == 0
        spec = RunSpec(figure="fig05")
        cache.store(spec.spec_hash(), "f" * 16, spec.canonical_json(), {"ok": True})
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["bytes"] > 0
        assert stats["directory"] == str(tmp_path / "cache")


class TestSourceFingerprint:
    def test_stable_within_process(self):
        assert source_fingerprint() == source_fingerprint()

    def test_sensitive_to_content(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        before = source_fingerprint(tmp_path)
        (tmp_path / "a.py").write_text("x = 2\n")
        # bypass the per-root memo by re-reading through a fresh module state
        import repro.runner.fingerprint as fp

        fp._cached = None
        after = source_fingerprint(tmp_path)
        assert before != after
