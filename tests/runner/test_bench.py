"""Tests for the bench document and baseline regression check."""

import json

from repro.runner import bench
from repro.runner.bench import check_against_baseline, run_bench, write_bench


def _doc(**figures):
    return {"schema": 1, "figures": figures}


def _entry(rate, ok=True, **extra):
    entry = {"ok": ok, "events_per_sec": rate, "events": 1000,
             "wall_seconds": 1.0}
    entry.update(extra)
    return entry


class TestRunBench:
    def test_document_structure(self, monkeypatch):
        def fake_execute(spec):
            return {"ok": True, "wall_seconds": 1.23456, "events": 42,
                    "events_per_sec": 34.0123}

        monkeypatch.setattr(bench, "execute_spec", fake_execute)
        document = run_bench(["fig05", "fig06"], quick=True, seed=7)
        assert document["schema"] == 1
        assert document["quick"] is True
        assert document["seed"] == 7
        assert set(document["figures"]) == {"fig05", "fig06"}
        entry = document["figures"]["fig05"]
        assert entry == {"ok": True, "wall_seconds": 1.2346, "events": 42,
                         "events_per_sec": 34.0}

    def test_failed_figure_is_recorded(self, monkeypatch):
        monkeypatch.setattr(
            bench, "execute_spec",
            lambda spec: {"ok": False, "error": "boom"},
        )
        document = run_bench(["fig05"])
        assert document["figures"]["fig05"] == {"ok": False, "error": "boom"}

    def test_real_run_end_to_end(self):
        document = run_bench(["fig05"], quick=True)
        entry = document["figures"]["fig05"]
        assert entry["ok"]
        assert entry["events"] > 0
        assert entry["events_per_sec"] > 0

    def test_write_bench_round_trips(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            bench, "execute_spec",
            lambda spec: {"ok": True, "wall_seconds": 1.0, "events": 10,
                          "events_per_sec": 10.0},
        )
        document = run_bench(["fig05"])
        path = write_bench(document, tmp_path / "bench.json")
        assert json.loads(path.read_text(encoding="utf-8")) == document


class TestCheckAgainstBaseline:
    def test_within_tolerance_passes(self):
        fresh = _doc(fig05=_entry(80.0))
        base = _doc(fig05=_entry(100.0))
        assert check_against_baseline(fresh, base, tolerance=0.30) == []

    def test_regression_detected(self):
        fresh = _doc(fig05=_entry(60.0))
        base = _doc(fig05=_entry(100.0))
        problems = check_against_baseline(fresh, base, tolerance=0.30)
        assert len(problems) == 1
        assert "fig05" in problems[0]
        assert "regressed" in problems[0]

    def test_faster_than_baseline_passes(self):
        fresh = _doc(fig05=_entry(250.0))
        base = _doc(fig05=_entry(100.0))
        assert check_against_baseline(fresh, base) == []

    def test_figure_missing_from_baseline_is_skipped(self):
        fresh = _doc(fig06=_entry(1.0))
        base = _doc(fig05=_entry(100.0))
        assert check_against_baseline(fresh, base) == []

    def test_failed_fresh_run_is_a_problem(self):
        fresh = _doc(fig05={"ok": False, "error": "boom"})
        base = _doc(fig05=_entry(100.0))
        problems = check_against_baseline(fresh, base)
        assert len(problems) == 1
        assert "failed" in problems[0]

    def test_failed_baseline_entry_is_skipped(self):
        fresh = _doc(fig05=_entry(1.0))
        base = _doc(fig05=_entry(0.0, ok=False))
        assert check_against_baseline(fresh, base) == []
