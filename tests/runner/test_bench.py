"""Tests for the bench document, baseline check, and profile report."""

import json
import platform

import pytest

from repro.runner import bench
from repro.runner.bench import (
    check_against_baseline,
    run_bench,
    run_profile,
    write_bench,
)


def _doc(**figures):
    return {"schema": 1, "figures": figures}


def _entry(rate, ok=True, **extra):
    entry = {"ok": ok, "events_per_sec": rate, "events": 1000,
             "wall_seconds": 1.0}
    entry.update(extra)
    return entry


class TestRunBench:
    def test_document_structure(self, monkeypatch):
        def fake_execute(spec):
            return {"ok": True, "wall_seconds": 1.23456, "events": 42,
                    "events_per_sec": 34.0123}

        monkeypatch.setattr(bench, "execute_spec", fake_execute)
        document = run_bench(["fig05", "fig06"], quick=True, seed=7, repeat=1)
        assert document["schema"] == 2
        assert document["quick"] is True
        assert document["seed"] == 7
        assert document["repeat"] == 1
        assert set(document["figures"]) == {"fig05", "fig06"}
        entry = document["figures"]["fig05"]
        assert entry == {"ok": True, "wall_seconds": 1.2346, "events": 42,
                         "events_per_sec": 34.0, "repeats": 1}

    def test_environment_metadata_recorded(self, monkeypatch):
        monkeypatch.setattr(
            bench, "execute_spec",
            lambda spec: {"ok": True, "wall_seconds": 1.0, "events": 10,
                          "events_per_sec": 10.0},
        )
        document = run_bench(["fig05"], repeat=1)
        assert document["python_version"] == platform.python_version()
        assert document["platform"] == platform.platform()
        # inside this repo the revision must resolve to a hex hash
        assert document["git_revision"] is None or all(
            c in "0123456789abcdef" for c in document["git_revision"]
        )

    def test_median_wall_time_over_repeats(self, monkeypatch):
        # First value feeds the untimed warm-up run; were it ever timed,
        # the median would shift to 4.0 and the assertions would catch it.
        walls = iter([9.0, 4.0, 1.0, 2.0])

        def fake_execute(spec):
            wall = next(walls)
            return {"ok": True, "wall_seconds": wall, "events": 100,
                    "events_per_sec": 100 / wall}

        monkeypatch.setattr(bench, "execute_spec", fake_execute)
        document = run_bench(["fig05"], repeat=3)
        entry = document["figures"]["fig05"]
        assert entry["repeats"] == 3
        assert entry["wall_seconds"] == 2.0  # median of 4.0, 1.0, 2.0
        assert entry["events_per_sec"] == 50.0

    def test_repeat_must_be_positive(self):
        with pytest.raises(ValueError, match="repeat"):
            run_bench(["fig05"], repeat=0)

    def test_failed_figure_is_recorded(self, monkeypatch):
        monkeypatch.setattr(
            bench, "execute_spec",
            lambda spec: {"ok": False, "error": "boom"},
        )
        document = run_bench(["fig05"])
        assert document["figures"]["fig05"] == {"ok": False, "error": "boom"}

    def test_real_run_end_to_end(self):
        document = run_bench(["fig05"], quick=True, repeat=1)
        entry = document["figures"]["fig05"]
        assert entry["ok"]
        assert entry["events"] > 0
        assert entry["events_per_sec"] > 0

    def test_backend_recorded_in_document_and_history(self, tmp_path,
                                                      monkeypatch):
        monkeypatch.setattr(
            bench, "execute_spec",
            lambda spec: {"ok": True, "wall_seconds": 2.0, "events": 10,
                          "events_per_sec": 5.0, "report": "R"},
        )
        monkeypatch.setattr(bench, "_accel_fingerprint",
                            lambda backend: "cafe" if backend == "c" else None)
        document = run_bench(["fig05"], repeat=1, backend="c")
        assert document["backend"] == "c"
        assert document["accel_fingerprint"] == "cafe"
        compiled = document["figures"]["fig05"]["compiled"]
        # the fake runs both backends at the same wall time and report
        assert compiled == {"ok": True, "pure_wall_seconds": 2.0,
                            "speedup_vs_pure": 1.0, "byte_identical": True}
        path = bench.append_history(document, tmp_path / "history.jsonl")
        line = json.loads(path.read_text(encoding="utf-8"))
        assert line["backend"] == "c"
        assert line["accel_fingerprint"] == "cafe"
        assert line["figures"]["fig05"]["compiled"] == compiled

    def test_compiled_report_divergence_fails_the_bench(self, monkeypatch):
        def fake_execute(spec):
            return {"ok": True, "wall_seconds": 1.0, "events": 10,
                    "events_per_sec": 10.0, "report": spec.backend}

        monkeypatch.setattr(bench, "execute_spec", fake_execute)
        monkeypatch.setattr(bench, "_accel_fingerprint", lambda backend: None)
        document = run_bench(["fig05"], repeat=1, backend="c")
        compiled = document["figures"]["fig05"]["compiled"]
        assert compiled["ok"] is False
        assert "diverged" in compiled["error"]

    def test_pure_backend_adds_no_comparison(self, monkeypatch):
        monkeypatch.setattr(
            bench, "execute_spec",
            lambda spec: {"ok": True, "wall_seconds": 1.0, "events": 10,
                          "events_per_sec": 10.0},
        )
        document = run_bench(["fig05"], repeat=1)
        assert document["backend"] == "pure"
        assert document["accel_fingerprint"] is None
        assert "compiled" not in document["figures"]["fig05"]

    def test_write_bench_round_trips(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            bench, "execute_spec",
            lambda spec: {"ok": True, "wall_seconds": 1.0, "events": 10,
                          "events_per_sec": 10.0},
        )
        document = run_bench(["fig05"])
        path = write_bench(document, tmp_path / "bench.json")
        assert json.loads(path.read_text(encoding="utf-8")) == document


class TestRunProfile:
    def test_profile_emits_hotspot_report(self):
        report = run_profile("fig05", quick=True, top=10)
        assert report["ok"]
        assert report["figure"] == "fig05"
        assert report["events"] > 0
        assert report["events_per_sec"] > 0
        assert 0 < len(report["hotspots"]) <= 10
        top_spot = report["hotspots"][0]
        assert {"file", "line", "function", "ncalls", "tottime",
                "cumtime"} <= set(top_spot)
        # ranked by tottime, and the report must be JSON-serializable
        tottimes = [spot["tottime"] for spot in report["hotspots"]]
        assert tottimes == sorted(tottimes, reverse=True)
        json.dumps(report)

    def test_profile_surfaces_simulator_hotspots(self):
        report = run_profile("fig05", quick=True, top=25)
        files = {spot["file"] for spot in report["hotspots"]}
        assert any("repro" in name for name in files)

    def test_profile_records_backend(self):
        report = run_profile("fig05", quick=True, top=5)
        assert report["backend"] == "pure"
        assert report["accel_fingerprint"] is None


class TestCheckAgainstBaseline:
    def test_within_tolerance_passes(self):
        fresh = _doc(fig05=_entry(80.0))
        base = _doc(fig05=_entry(100.0))
        assert check_against_baseline(fresh, base, tolerance=0.30) == []

    def test_regression_detected(self):
        fresh = _doc(fig05=_entry(60.0))
        base = _doc(fig05=_entry(100.0))
        problems = check_against_baseline(fresh, base, tolerance=0.30)
        assert len(problems) == 1
        assert "fig05" in problems[0]
        assert "regressed" in problems[0]

    def test_faster_than_baseline_passes(self):
        fresh = _doc(fig05=_entry(250.0))
        base = _doc(fig05=_entry(100.0))
        assert check_against_baseline(fresh, base) == []

    def test_figure_missing_from_baseline_is_skipped(self):
        fresh = _doc(fig06=_entry(1.0))
        base = _doc(fig05=_entry(100.0))
        assert check_against_baseline(fresh, base) == []

    def test_failed_fresh_run_is_a_problem(self):
        fresh = _doc(fig05={"ok": False, "error": "boom"})
        base = _doc(fig05=_entry(100.0))
        problems = check_against_baseline(fresh, base)
        assert len(problems) == 1
        assert "failed" in problems[0]

    def test_failed_baseline_entry_is_skipped(self):
        fresh = _doc(fig05=_entry(1.0))
        base = _doc(fig05=_entry(0.0, ok=False))
        assert check_against_baseline(fresh, base) == []
