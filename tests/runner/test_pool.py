"""Tests for the sweep pool: caching, isolation, and parallel dispatch."""

from repro.runner.cache import ResultCache
from repro.runner.pool import run_specs
from repro.runner.spec import RunSpec, specs_for_figure


class TestSequentialSweep:
    def test_runs_and_caches(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        specs = specs_for_figure("fig05", quick=True)[:1]
        outcomes = run_specs(specs, workers=1, cache=cache)
        assert [o.ok for o in outcomes] == [True]
        assert not outcomes[0].cached
        assert outcomes[0].result["events"] > 0
        assert outcomes[0].result["report"].startswith("Fig. 5")
        assert len(cache) == 1

        again = run_specs(specs, workers=1, cache=cache)
        assert again[0].cached
        assert again[0].result == outcomes[0].result

    def test_no_cache_flag_reruns_but_refreshes(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        specs = specs_for_figure("fig05", quick=True)[:1]
        run_specs(specs, cache=cache)
        fresh = run_specs(specs, cache=cache, use_cache=False)
        assert not fresh[0].cached
        assert fresh[0].ok

    def test_failure_is_isolated_and_not_cached(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        good = specs_for_figure("fig05", quick=True)[0]
        bad = RunSpec(figure="fig99")  # unknown figure fails inside the worker
        outcomes = run_specs([bad, good], cache=cache)
        assert not outcomes[0].ok
        assert "fig99" in outcomes[0].error
        assert outcomes[1].ok
        assert len(cache) == 1  # only the success was stored

    def test_bad_config_override_fails_cleanly(self, tmp_path):
        spec = RunSpec(figure="fig05", overrides={"no_such_field": 1})
        outcomes = run_specs([spec], cache=ResultCache(tmp_path / "c"))
        assert not outcomes[0].ok

    def test_overrides_change_the_run(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        base = RunSpec(figure="fig05")
        tweaked = RunSpec(figure="fig05", overrides={"epoch_cycles": 1000})
        outcomes = run_specs([base, tweaked], cache=cache)
        assert all(o.ok for o in outcomes)
        assert outcomes[0].result["report"] != outcomes[1].result["report"]


class TestWarmStartSweep:
    #: Tiny epochs so each cell's simulated window stays in the
    #: milliseconds; the grouping logic under test is scale-free.
    OVERRIDES = {"epoch_cycles": 400}

    def _specs(self, measure_lengths, seed=0):
        return [
            RunSpec(
                figure="fig05",
                cell={"measure_epochs": length},
                seed=seed,
                overrides=self.OVERRIDES,
            )
            for length in measure_lengths
        ]

    def test_group_key_ignores_measurement_knobs(self):
        short, long = self._specs([5, 10])
        assert short.spec_hash() != long.spec_hash()
        assert short.warmup_group_key() == long.warmup_group_key()

    def test_group_key_separates_prefix_changes(self):
        (base,) = self._specs([5])
        (other_seed,) = self._specs([5], seed=1)
        assert base.warmup_group_key() != other_seed.warmup_group_key()
        tweaked = RunSpec(
            figure="fig05",
            cell={"measure_epochs": 5},
            overrides={"epoch_cycles": 800},
        )
        assert base.warmup_group_key() != tweaked.warmup_group_key()

    def test_warm_started_sweep_matches_cold(self, tmp_path):
        specs = self._specs([5, 8, 11])
        cold = run_specs(specs, workers=1)
        warm = run_specs(
            specs, workers=1, warm_start_dir=str(tmp_path / "ckpt")
        )
        assert [o.ok for o in cold] == [True, True, True]
        assert [o.ok for o in warm] == [True, True, True]
        for cold_outcome, warm_outcome in zip(cold, warm):
            assert (
                warm_outcome.result["report"] == cold_outcome.result["report"]
            )
        # all three cells shared one warm-up prefix -> one checkpoint
        from repro.runner.checkpoint import CheckpointStore

        assert len(CheckpointStore(tmp_path / "ckpt")) == 1


class TestParallelSweep:
    def test_two_workers_produce_correct_results(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        specs = specs_for_figure("fig07", quick=True)[:2]
        outcomes = run_specs(specs, workers=2, cache=cache)
        assert [o.ok for o in outcomes] == [True, True]
        # parallel results match what a sequential in-process run reports
        sequential = run_specs(specs, workers=1, cache=cache, use_cache=False)
        for par, seq in zip(outcomes, sequential):
            assert par.result["report"] == seq.result["report"]

    def test_timeout_is_recorded_not_raised(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        specs = specs_for_figure("fig07", quick=True)[:2]
        outcomes = run_specs(specs, workers=2, timeout=0.05, cache=cache)
        assert len(outcomes) == 2
        assert any(not o.ok and "timeout" in o.error for o in outcomes)
        # timed-out cells are never cached
        assert len(cache) <= sum(1 for o in outcomes if o.ok)
