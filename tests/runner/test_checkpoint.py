"""Unit tests for the checkpoint/restore subsystem."""

import pytest

from repro.core.pabst import PabstMechanism
from repro.experiments.common import ClassSpec, build_system, config_overrides
from repro.runner.checkpoint import (
    CHECKPOINT_VERSION,
    Checkpoint,
    CheckpointStore,
    restore_system,
    snapshot_system,
    warmup_prefix_hash,
    warmup_prefix_key,
)
from repro.sim.engine import SimulationError
from repro.sim.records import advance_request_ids, next_request_id
from repro.workloads.stream import StreamWorkload

#: Small epochs keep each simulated window to a few thousand cycles.
EPOCH_CYCLES = 400
WARMUP = 3
TOTAL = 8


def tiny_system(seed=0, mechanism=None, sanitize=False):
    specs = [
        ClassSpec(
            qos_id=0,
            name="hi",
            weight=7,
            cores=2,
            workload_factory=StreamWorkload,
            l3_ways=8,
        ),
        ClassSpec(
            qos_id=1,
            name="lo",
            weight=3,
            cores=2,
            workload_factory=StreamWorkload,
            l3_ways=8,
        ),
    ]
    with config_overrides(epoch_cycles=EPOCH_CYCLES):
        return build_system(
            specs,
            mechanism=mechanism if mechanism is not None else PabstMechanism(),
            seed=seed,
            sanitize=sanitize,
        )


def machine_state(system):
    """The engine-level facts that pin a simulation's exact position."""
    engine = system.engine
    return (
        engine.now,
        engine.dispatched,
        engine._seq,
        engine._live,
        engine._wheel_count,
        system.stats.epochs,
    )


# ----------------------------------------------------------------------
# prefix hashing
# ----------------------------------------------------------------------
def test_prefix_hash_is_stable_across_identical_builds():
    assert warmup_prefix_hash(tiny_system(), WARMUP) == warmup_prefix_hash(
        tiny_system(), WARMUP
    )


def test_prefix_hash_is_sensitive_to_run_identity():
    base = warmup_prefix_hash(tiny_system(), WARMUP)
    assert warmup_prefix_hash(tiny_system(seed=1), WARMUP) != base
    assert warmup_prefix_hash(tiny_system(), WARMUP + 1) != base
    from repro.baselines.source_only import SourceOnlyMechanism

    assert (
        warmup_prefix_hash(tiny_system(mechanism=SourceOnlyMechanism()), WARMUP)
        != base
    )
    with config_overrides(epoch_cycles=EPOCH_CYCLES, l2_mshrs=4):
        other_config = build_system(
            [
                ClassSpec(
                    qos_id=0,
                    name="hi",
                    weight=7,
                    cores=2,
                    workload_factory=StreamWorkload,
                    l3_ways=8,
                ),
                ClassSpec(
                    qos_id=1,
                    name="lo",
                    weight=3,
                    cores=2,
                    workload_factory=StreamWorkload,
                    l3_ways=8,
                ),
            ],
            mechanism=PabstMechanism(),
        )
    assert warmup_prefix_hash(other_config, WARMUP) != base


def test_prefix_key_is_json_serializable_and_versioned():
    import json

    key = warmup_prefix_key(tiny_system(), WARMUP)
    assert key["version"] == CHECKPOINT_VERSION
    assert key["warmup_epochs"] == WARMUP
    json.dumps(key, sort_keys=True, default=str)


def test_prefix_hash_is_sensitive_to_tracing():
    # a traced warm-up buffers different tracer state in its snapshot,
    # so it must never serve as an untraced run's warm-start (and vice
    # versa) — the "traced" prefix-key field keeps them apart
    from repro.obs.trace import RequestTracer

    untraced = tiny_system()
    traced = tiny_system()
    traced.engine.tracer = RequestTracer()
    assert warmup_prefix_hash(untraced, WARMUP) != (
        warmup_prefix_hash(traced, WARMUP)
    )


# ----------------------------------------------------------------------
# snapshot / restore
# ----------------------------------------------------------------------
def test_restored_run_matches_uninterrupted_run():
    cold = tiny_system()
    cold.run_epochs(TOTAL)

    warm = tiny_system()
    prefix = warmup_prefix_hash(warm, WARMUP)
    warm.run_epochs(WARMUP)
    checkpoint = snapshot_system(warm, WARMUP, prefix)
    forked = restore_system(checkpoint)
    forked.run_epochs(TOTAL - WARMUP)

    assert machine_state(forked) == machine_state(cold)


def test_one_checkpoint_forks_independent_runs():
    system = tiny_system()
    prefix = warmup_prefix_hash(system, WARMUP)
    system.run_epochs(WARMUP)
    checkpoint = snapshot_system(system, WARMUP, prefix)

    fork_a = restore_system(checkpoint)
    fork_b = restore_system(checkpoint)
    assert fork_a is not fork_b
    fork_a.run_epochs(TOTAL - WARMUP)  # running one fork...
    assert fork_b.engine.now == checkpoint.boundary_cycle  # ...moves not the other
    fork_b.run_epochs(TOTAL - WARMUP)
    assert machine_state(fork_a) == machine_state(fork_b)


def test_snapshot_requires_prefix_hash():
    system = tiny_system()
    with pytest.raises(ValueError, match="prefix hash"):
        snapshot_system(system, WARMUP)


def test_restore_rejects_wrong_version():
    system = tiny_system()
    prefix = warmup_prefix_hash(system, WARMUP)
    system.run_epochs(WARMUP)
    checkpoint = snapshot_system(system, WARMUP, prefix)
    import dataclasses

    # metadata version disagrees with this build: restore must refuse
    skewed = dataclasses.replace(checkpoint, version=CHECKPOINT_VERSION + 1)
    with pytest.raises(SimulationError, match="version"):
        restore_system(skewed)


def test_restore_rejects_corrupt_payload():
    broken = Checkpoint(
        prefix_hash="0" * 16,
        payload=b"not a pickle",
        version=CHECKPOINT_VERSION,
        fingerprint="",
        warmup_epochs=WARMUP,
        boundary_cycle=0,
        request_id_watermark=0,
    )
    with pytest.raises(SimulationError, match="unpickle"):
        restore_system(broken)


def test_sanitized_system_round_trips():
    cold = tiny_system(sanitize=True)
    cold.run_epochs(TOTAL)

    warm = tiny_system(sanitize=True)
    prefix = warmup_prefix_hash(warm, WARMUP)
    warm.run_epochs(WARMUP)
    forked = restore_system(snapshot_system(warm, WARMUP, prefix))
    assert forked.engine.sanitizer is not None
    forked.run_epochs(TOTAL - WARMUP)
    assert machine_state(forked) == machine_state(cold)


def test_on_restore_catches_tampered_wheel_count():
    system = tiny_system()
    prefix = warmup_prefix_hash(system, WARMUP)
    system.run_epochs(WARMUP)
    checkpoint = snapshot_system(system, WARMUP, prefix)
    restored = restore_system(checkpoint)  # pristine restore passes

    restored.engine._wheel_count += 1  # tamper, then re-validate
    from repro.sim.sanitizer import SimSanitizer

    with pytest.raises(SimulationError, match="wheel count"):
        SimSanitizer().on_restore(restored)


def test_on_restore_catches_live_counter_drift():
    system = tiny_system()
    prefix = warmup_prefix_hash(system, WARMUP)
    system.run_epochs(WARMUP)
    restored = restore_system(snapshot_system(system, WARMUP, prefix))

    restored.engine._live += 1
    from repro.sim.sanitizer import SimSanitizer

    with pytest.raises(SimulationError, match="live-event counter"):
        SimSanitizer().on_restore(restored)


def test_advance_request_ids_is_monotone():
    current = next_request_id()
    advance_request_ids(current - 5)  # already past: no-op beyond one tick
    after_noop = next_request_id()
    assert after_noop > current
    advance_request_ids(after_noop + 100)
    assert next_request_id() >= after_noop + 100


# ----------------------------------------------------------------------
# store
# ----------------------------------------------------------------------
def make_checkpoint(seed=0, warmup=WARMUP):
    system = tiny_system(seed=seed)
    prefix = warmup_prefix_hash(system, warmup)
    system.run_epochs(warmup)
    return snapshot_system(system, warmup, prefix)


def test_store_round_trip(tmp_path):
    store = CheckpointStore(tmp_path)
    checkpoint = make_checkpoint()
    store.save(checkpoint)
    loaded = store.load(checkpoint.prefix_hash)
    assert loaded is not None
    assert loaded.payload == checkpoint.payload
    assert loaded.boundary_cycle == checkpoint.boundary_cycle
    assert loaded.request_id_watermark == checkpoint.request_id_watermark
    restored = restore_system(loaded)
    assert restored.engine.now == checkpoint.boundary_cycle


def test_store_misses_on_unknown_and_corrupt_entries(tmp_path):
    store = CheckpointStore(tmp_path)
    assert store.load("f" * 16) is None
    checkpoint = make_checkpoint()
    path = store.save(checkpoint)
    path.write_bytes(b"garbage")
    assert store.load(checkpoint.prefix_hash) is None


def test_store_misses_on_stale_fingerprint(tmp_path, monkeypatch):
    store = CheckpointStore(tmp_path)
    checkpoint = make_checkpoint()
    store.save(checkpoint)
    import repro.runner.checkpoint as checkpoint_module

    monkeypatch.setattr(
        checkpoint_module, "source_fingerprint", lambda: "different"
    )
    assert store.load(checkpoint.prefix_hash) is None


def test_store_lru_eviction(tmp_path):
    import os

    store = CheckpointStore(tmp_path, max_entries=2)
    checkpoints = [make_checkpoint(warmup=warmup) for warmup in (1, 2, 3)]
    for age, checkpoint in enumerate(checkpoints[:2]):
        path = store.save(checkpoint)
        os.utime(path, (age, age))  # pin distinct, old mtimes
    assert len(store) == 2
    store.save(checkpoints[2])
    assert len(store) == 2
    assert store.load(checkpoints[0].prefix_hash) is None  # oldest evicted
    assert store.load(checkpoints[2].prefix_hash) is not None


def test_store_clear_and_stats(tmp_path):
    store = CheckpointStore(tmp_path)
    assert store.stats()["entries"] == 0
    store.save(make_checkpoint())
    stats = store.stats()
    assert stats["entries"] == 1
    assert stats["bytes"] > 0
    assert store.clear() == 1
    assert len(store) == 0
