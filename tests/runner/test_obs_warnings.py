"""The runner's tolerated I/O failures must be counted, not swallowed.

Four sites in :mod:`repro.runner.cache` and :mod:`repro.runner.checkpoint`
historically did ``except OSError: pass``; they now route through
:func:`repro.obs.warnings.obs_warn`, which logs and bumps a named counter
that ``repro cache --stats`` reports.  These tests force each failure
twice over: by monkeypatching the failing call (works everywhere, even
as root) and by a read-only store directory (skipped under root, where
permission bits do not apply).
"""

import logging
import os
from pathlib import Path

import pytest

from repro.obs.warnings import reset_warning_counters, warning_counts
from repro.runner.cache import ResultCache
from repro.runner.checkpoint import (
    Checkpoint,
    CHECKPOINT_VERSION,
    CheckpointStore,
)
from repro.runner.spec import RunSpec

requires_permission_bits = pytest.mark.skipif(
    os.geteuid() == 0, reason="root bypasses directory permission bits"
)


@pytest.fixture(autouse=True)
def isolated_counters():
    reset_warning_counters()
    yield
    reset_warning_counters()


def store_result(cache, seed=0):
    spec = RunSpec(figure="fig05", seed=seed)
    cache.store(spec.spec_hash(), "f" * 16, spec.canonical_json(), {"ok": True})
    return spec


def make_checkpoint(warmup=1):
    import repro.runner.checkpoint as checkpoint_module

    return Checkpoint(
        prefix_hash=f"{warmup:016x}",
        payload=b"payload",
        boundary_cycle=100,
        warmup_epochs=warmup,
        request_id_watermark=10,
        fingerprint=checkpoint_module.source_fingerprint(),
        version=CHECKPOINT_VERSION,
    )


class TestResultCacheWarnings:
    def test_utime_failure_counts_and_logs(self, tmp_path, monkeypatch, caplog):
        cache = ResultCache(tmp_path / "cache")
        spec = store_result(cache)

        def broken_utime(*args, **kwargs):
            raise OSError("read-only store")

        monkeypatch.setattr(os, "utime", broken_utime)
        with caplog.at_level(logging.WARNING, logger="repro.obs"):
            assert cache.load(spec.spec_hash(), "f" * 16) == {"ok": True}
        assert warning_counts() == {"cache.utime_failed": 1}
        assert "could not refresh recency" in caplog.text

    def test_evict_unlink_failure_counts(self, tmp_path, monkeypatch):
        cache = ResultCache(tmp_path / "cache", max_entries=1)
        store_result(cache, seed=0)

        original_unlink = Path.unlink

        def broken_unlink(self, *args, **kwargs):
            if self.suffix == ".json":
                raise OSError("permission denied")
            return original_unlink(self, *args, **kwargs)

        monkeypatch.setattr(Path, "unlink", broken_unlink)
        store_result(cache, seed=1)  # beyond the cap -> eviction attempt
        assert warning_counts() == {"cache.evict_unlink_failed": 1}

    @requires_permission_bits
    def test_read_only_store_still_serves_hits(self, tmp_path):
        directory = tmp_path / "cache"
        cache = ResultCache(directory)
        spec = store_result(cache)
        directory.chmod(0o555)
        try:
            assert cache.load(spec.spec_hash(), "f" * 16) == {"ok": True}
        finally:
            directory.chmod(0o755)
        assert warning_counts() == {"cache.utime_failed": 1}


class TestCheckpointStoreWarnings:
    def test_utime_failure_counts_and_logs(self, tmp_path, monkeypatch, caplog):
        store = CheckpointStore(tmp_path)
        checkpoint = make_checkpoint()
        store.save(checkpoint)

        def broken_utime(*args, **kwargs):
            raise OSError("read-only store")

        monkeypatch.setattr(os, "utime", broken_utime)
        with caplog.at_level(logging.WARNING, logger="repro.obs"):
            loaded = store.load(checkpoint.prefix_hash)
        assert loaded is not None and loaded.payload == b"payload"
        assert warning_counts() == {"checkpoint.utime_failed": 1}

    def test_evict_unlink_failure_counts(self, tmp_path, monkeypatch):
        store = CheckpointStore(tmp_path, max_entries=1)
        store.save(make_checkpoint(warmup=1))

        original_unlink = Path.unlink

        def broken_unlink(self, *args, **kwargs):
            if self.suffix == ".ckpt":
                raise OSError("permission denied")
            return original_unlink(self, *args, **kwargs)

        monkeypatch.setattr(Path, "unlink", broken_unlink)
        store.save(make_checkpoint(warmup=2))
        assert warning_counts() == {"checkpoint.evict_unlink_failed": 1}

    @requires_permission_bits
    def test_read_only_store_still_serves_hits(self, tmp_path):
        directory = tmp_path / "checkpoints"
        store = CheckpointStore(directory)
        checkpoint = make_checkpoint()
        store.save(checkpoint)
        directory.chmod(0o555)
        try:
            assert store.load(checkpoint.prefix_hash) is not None
        finally:
            directory.chmod(0o755)
        assert warning_counts() == {"checkpoint.utime_failed": 1}
