"""Unit tests for the shared experiment plumbing."""

import pytest

from repro.baselines.none import NoQosMechanism
from repro.experiments.common import (
    ClassSpec,
    build_system,
    make_mechanism,
    run_system,
)
from repro.sim.config import SystemConfig
from repro.workloads.stream import StreamWorkload


def spec(qos_id=0, cores=2, weight=1, ways=None):
    return ClassSpec(
        qos_id=qos_id,
        name=f"c{qos_id}",
        weight=weight,
        cores=cores,
        workload_factory=StreamWorkload,
        l3_ways=ways,
    )


class TestMakeMechanism:
    def test_known_names(self):
        for name in ("none", "source-only", "target-only", "pabst"):
            assert make_mechanism(name).name == name

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown mechanism"):
            make_mechanism("fq")


class TestBuildSystem:
    def test_cores_assigned_in_spec_order(self):
        system = build_system([spec(0, cores=2), spec(1, cores=3)])
        assert system.registry.cores_in_class(0) == [0, 1]
        assert system.registry.cores_in_class(1) == [2, 3, 4]
        assert len(system.cores) == 5

    def test_each_core_gets_fresh_workload(self):
        system = build_system([spec(0, cores=3)])
        # identity check only; the value never feeds simulation state
        workloads = {id(core.workload) for core in system.cores.values()}  # repro: noqa[DET001]
        assert len(workloads) == 3

    def test_default_config_sized_to_specs(self):
        system = build_system([spec(0, cores=2), spec(1, cores=2)])
        assert system.config.cores >= 4

    def test_explicit_config_capacity_checked(self):
        with pytest.raises(ValueError):
            build_system(
                [spec(0, cores=4)], config=SystemConfig.small_test()
            )

    def test_empty_specs_rejected(self):
        with pytest.raises(ValueError):
            build_system([])

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            ClassSpec(0, "x", weight=1, cores=0, workload_factory=StreamWorkload)


class TestRunSystem:
    def test_result_summarizes_steady_window(self):
        system = build_system(
            [spec(0, cores=1), spec(1, cores=1)], mechanism=NoQosMechanism()
        )
        result = run_system(system, epochs=10, warmup_epochs=3)
        assert len(result.timeline) == 10
        assert result.cycles == 10 * system.config.epoch_cycles
        assert 0.0 <= result.share(0) <= 1.0
        assert result.total_utilization() > 0.0
        assert result.ipc(0) > 0.0

    def test_warmup_must_be_shorter_than_run(self):
        system = build_system([spec(0)])
        with pytest.raises(ValueError):
            run_system(system, epochs=5, warmup_epochs=5)
