"""Byte-exact golden pinning of experiment reports.

The perf work on the simulator kernels (dense latency tables, memoized
address decode, the engine's plain-tuple heap, the controller's pass
coalescing) is only legal because it is bit-identical: same events, same
order, same numbers.  These tests pin the quick fig05/fig06 reports
byte-for-byte against committed golden files, so any future "harmless"
optimization that perturbs event order fails immediately.

Regenerating (only after an intentional semantic change)::

    PYTHONPATH=src python -c "
    from repro.experiments import fig05_proportional as m
    open('tests/experiments/golden/fig05_quick_seed0.txt', 'w').write(
        m.run(quick=True, seed=0).report() + '\\n')"
"""

from pathlib import Path

import pytest

from repro.experiments import (
    fig05_proportional,
    fig06_work_conserving,
    fig07_source_and_target,
)

GOLDEN_DIR = Path(__file__).parent / "golden"

CASES = [
    ("fig05_quick_seed0.txt", fig05_proportional),
    ("fig06_quick_seed0.txt", fig06_work_conserving),
    ("fig07_quick_seed0.txt", fig07_source_and_target),
]


@pytest.mark.parametrize("filename,module", CASES, ids=lambda c: str(c))
def test_quick_report_matches_golden_bytes(filename, module):
    golden_path = GOLDEN_DIR / filename
    expected = golden_path.read_text(encoding="utf-8")
    actual = module.run(quick=True, seed=0).report() + "\n"
    assert actual == expected, (
        f"{filename} diverged from the committed golden output; if this "
        "change is intentional, regenerate the golden file (see module "
        "docstring), otherwise an optimization broke bit-determinism"
    )
