"""Run-to-run determinism of whole experiments (fixed seed)."""

from repro.experiments import fig05_proportional


class TestDeterminism:
    def test_same_seed_same_report(self):
        a = fig05_proportional.run(quick=True, seed=0)
        b = fig05_proportional.run(quick=True, seed=0)
        assert a.report() == b.report()
        assert a.hi_share == b.hi_share

    def test_rng_free_experiment_is_seed_invariant(self):
        """Fig. 5 uses pure streams (no RNG), so the whole simulation is
        identical under any seed -- a strong determinism guarantee."""
        a = fig05_proportional.run(quick=True, seed=0)
        b = fig05_proportional.run(quick=True, seed=123)
        assert a.timeline.utilization_series(0) == b.timeline.utilization_series(0)
