"""Fork-equals-cold: warm-started runs are byte-identical to cold runs.

The checkpoint subsystem's contract (DESIGN.md §8) is that forking a
measurement run from a warm-up snapshot produces the same bytes as
simulating the whole run cold.  These tests drive each figure three
times — cold, warm-populating (simulates the warm-up, writes the
checkpoint, continues), and warm-restoring (forks from the stored
snapshot) — and require all three reports identical.  fig07 covers the
multi-system case: one ``run()`` builds six systems (mechanism x mix),
so a single invocation exercises six distinct warm-up prefixes.
"""

import pytest

from repro.experiments import (
    fig05_proportional,
    fig06_work_conserving,
    fig07_source_and_target,
)
from repro.experiments.common import warm_start
from repro.runner.checkpoint import CheckpointStore

MODULES = [fig05_proportional, fig06_work_conserving, fig07_source_and_target]


@pytest.mark.parametrize(
    "module", MODULES, ids=lambda m: m.__name__.rsplit(".", 1)[-1]
)
def test_warm_started_report_is_byte_identical(module, tmp_path):
    cold = module.run(quick=True, seed=0).report()
    store = CheckpointStore(tmp_path)
    with warm_start(store):
        populating = module.run(quick=True, seed=0).report()
        assert len(store) > 0, "populating run stored no checkpoint"
        restoring = module.run(quick=True, seed=0).report()
    assert populating == cold, (
        "checkpoint-populating run diverged from the cold run; splitting "
        "the warm-up from the measurement phase is not bit-transparent"
    )
    assert restoring == cold, (
        "checkpoint-restored run diverged from the cold run; snapshot/"
        "restore loses or perturbs simulator state"
    )


def test_distinct_seeds_do_not_share_checkpoints(tmp_path):
    store = CheckpointStore(tmp_path)
    with warm_start(store):
        fig05_proportional.run(quick=True, seed=0)
        seed1 = fig05_proportional.run(quick=True, seed=1).report()
    # the seed is part of the warm-up prefix: two seeds, two checkpoints
    assert len(store) == 2
    assert seed1 == fig05_proportional.run(quick=True, seed=1).report()


def test_measurement_knob_shares_one_checkpoint(tmp_path):
    """fig05's measure_epochs cells share a warm-up prefix."""
    store = CheckpointStore(tmp_path)
    with warm_start(store):
        fig05_proportional.run(quick=True, seed=0, measure_epochs=15)
        fig05_proportional.run(quick=True, seed=0, measure_epochs=30)
    assert len(store) == 1
