"""Quick-mode integration tests for every figure experiment.

These run each experiment at reduced scale and assert the figure's
qualitative shape plus report rendering; the full-scale assertions live in
``benchmarks/``.
"""

import pytest

from repro.experiments import (
    fig01_motivation,
    fig05_proportional,
    fig06_work_conserving,
    fig07_source_and_target,
    fig08_excess,
    fig09_memcached,
    fig10_isolation,
    fig11_iaas,
    fig12_efficiency,
)


class TestFig01:
    @pytest.fixture(scope="class")
    def result(self):
        return fig01_motivation.run(quick=True)

    def test_source_regulates_streams(self, result):
        assert result.column("a").error < 0.25

    def test_target_fails_streams(self, result):
        assert result.column("b").error > result.column("a").error

    def test_source_fails_chaser(self, result):
        assert result.column("c").error > 0.4

    def test_report_lists_four_columns(self, result):
        report = result.report()
        assert all(tag in report for tag in ("a ", "b ", "c ", "d "))


class TestFig05:
    @pytest.fixture(scope="class")
    def result(self):
        return fig05_proportional.run(quick=True)

    def test_split_near_target(self, result):
        assert result.hi_share == pytest.approx(0.7, abs=0.06)

    def test_shares_sum_to_one(self, result):
        assert result.hi_share + result.lo_share == pytest.approx(1.0)

    def test_report_renders(self, result):
        assert "proportional allocation" in result.report()


class TestFig06:
    @pytest.fixture(scope="class")
    def result(self):
        return fig06_work_conserving.run(quick=True)

    def test_idle_phase_reallocates(self, result):
        assert result.constant_util_idle > result.constant_util_active + 0.2

    def test_active_phase_enforces_share(self, result):
        assert result.constant_util_active < 0.5


class TestFig07:
    @pytest.fixture(scope="class")
    def result(self):
        return fig07_source_and_target.run(quick=True)

    def test_pabst_accurate_on_streams(self, result):
        assert result.outcome("stream", "pabst").error < 0.15

    def test_pabst_best_on_chaser(self, result):
        pabst = result.outcome("chaser", "pabst").hi_share
        assert pabst >= result.outcome("chaser", "source-only").hi_share - 0.03
        assert pabst >= result.outcome("chaser", "target-only").hi_share - 0.03

    def test_unknown_outcome_raises(self, result):
        with pytest.raises(KeyError):
            result.outcome("stream", "magic")


class TestFig08:
    @pytest.fixture(scope="class")
    def result(self):
        return fig08_excess.run(quick=True)

    def test_excess_split_two_to_one(self, result):
        assert result.ddr_hi_share_of_ddr == pytest.approx(2 / 3, abs=0.08)

    def test_l3_class_uses_no_bandwidth(self, result):
        assert result.l3_share < 0.08


class TestFig09:
    @pytest.fixture(scope="class")
    def result(self):
        return fig09_memcached.run(quick=True)

    def test_aggressor_hurts_baseline(self, result):
        assert result.baseline.mean > result.isolated.mean

    def test_pabst_recovers_most_of_the_mean(self, result):
        assert result.pabst.mean < result.baseline.mean

    def test_summaries_have_transactions(self, result):
        assert result.isolated.transactions > 0
        assert result.pabst.transactions > 0


class TestFig10:
    @pytest.fixture(scope="class")
    def result(self):
        return fig10_isolation.run(quick=True)

    def test_pabst_reduces_slowdown(self, result):
        assert result.mean_slowdown("pabst") < result.mean_slowdown("none")

    def test_rows_cover_requested_workloads(self, result):
        assert {row.workload for row in result.rows} == {"libquantum", "sphinx3"}

    def test_report_has_mean_row(self, result):
        assert "MEAN" in result.report()


class TestFig11:
    @pytest.fixture(scope="class")
    def result(self):
        return fig11_iaas.run(quick=True)

    def test_variable_workloads_gain(self, result):
        by_name = {row.workload: row for row in result.rows}
        assert by_name["mcf"].speedup > 1.2

    def test_report_shows_improvement(self, result):
        assert "%" in result.report()


class TestFig12:
    @pytest.fixture(scope="class")
    def result(self):
        return fig12_efficiency.run(quick=True)

    def test_qos_costs_efficiency(self, result):
        assert result.mean_efficiency("pabst") < result.mean_efficiency("none")

    def test_efficiencies_are_fractions(self, result):
        for row in result.rows:
            assert all(0.0 <= v <= 1.0 for v in row.efficiency.values())
