"""Tests for the head-to-head mechanism arena."""

import json

import pytest

from repro.experiments import arena
from repro.mechanisms import ALL_MECHANISMS


class TestMatrix:
    def test_default_matrix_is_big_enough(self):
        """The arena's contract: >= 4 distinct mechanisms over >= 3
        scenarios by default."""
        assert len(ALL_MECHANISMS) >= 4
        assert len(arena.SCENARIOS) >= 3
        cells = arena.sweep_cells()
        assert len(cells) == len(ALL_MECHANISMS) * len(arena.SCENARIOS)
        seen = {
            (cell["scenarios"][0], cell["mechanisms"][0]) for cell in cells
        }
        assert len(seen) == len(cells)

    def test_unknown_scenario(self):
        with pytest.raises(KeyError, match="unknown scenario"):
            arena.run(quick=True, scenarios=("nope",))


class TestDocument:
    @pytest.fixture(scope="class")
    def result(self):
        return arena.run(
            quick=True,
            mechanisms=("none", "pabst", "dpq", "perbank"),
            scenarios=("stream",),
        )

    def test_schema_validates(self, result):
        assert arena.validate_report(result.metrics()) == 4

    def test_json_round_trip_is_lossless(self, result):
        document = result.metrics()
        assert json.loads(json.dumps(document)) == document

    def test_wcet_mechanisms_report_bounds(self, result):
        by_mechanism = {
            cell["mechanism"]: cell for cell in result.metrics()["cells"]
        }
        assert by_mechanism["none"]["bound"] is None
        assert by_mechanism["dpq"]["bound"]["ok"] is True
        assert by_mechanism["perbank"]["bound"]["ok"] is True

    def test_pabst_wins_proportionality(self, result):
        """The paper's headline, visible in the arena: PABST's hi-class
        share lands near the 3:1 entitlement while laissez-faire does
        not."""
        by_mechanism = {
            cell["mechanism"]: cell for cell in result.metrics()["cells"]
        }
        assert by_mechanism["pabst"]["allocation_error"] < 0.2
        assert by_mechanism["none"]["allocation_error"] > 0.5

    def test_latency_percentiles_ordered(self, result):
        for cell in result.metrics()["cells"]:
            for stats in cell["read_latency"].values():
                assert stats["count"] > 0
                assert (
                    stats["p50"] <= stats["p95"] <= stats["p99"]
                    <= stats["max"]
                )

    def test_report_renders_every_mechanism(self, result):
        text = result.report()
        for name in ("none", "pabst", "dpq", "perbank"):
            assert name in text
        assert "Arena - scenario 'stream'" in text

    def test_repeat_run_is_byte_identical(self, result):
        again = arena.run(
            quick=True,
            mechanisms=("none", "pabst", "dpq", "perbank"),
            scenarios=("stream",),
        )
        assert again.metrics() == result.metrics()
        assert again.report() == result.report()


class TestMerge:
    def test_merge_matches_monolithic_run(self):
        merged = arena.merge_documents(
            [
                arena.run(
                    quick=True, mechanisms=(m,), scenarios=("stream",)
                ).metrics()
                for m in ("dpq", "none")  # deliberately out of order
            ]
        )
        monolithic = arena.run(
            quick=True, mechanisms=("none", "dpq"), scenarios=("stream",)
        ).metrics()
        assert merged == monolithic

    def test_merge_rejects_mixed_runs(self):
        document = arena.run(
            quick=True, mechanisms=("none",), scenarios=("stream",)
        ).metrics()
        other = dict(document, seed=1)
        with pytest.raises(ValueError, match="mixed"):
            arena.merge_documents([document, other])
        with pytest.raises(ValueError, match="schema"):
            arena.merge_documents([dict(document, schema="bogus")])
        with pytest.raises(ValueError, match="nothing to merge"):
            arena.merge_documents([])


class TestValidation:
    def make_document(self):
        return arena.run(
            quick=True, mechanisms=("none",), scenarios=("stream",)
        ).metrics()

    def test_rejects_wrong_schema(self):
        document = self.make_document()
        document["schema"] = "repro.arena/v0"
        with pytest.raises(ValueError, match="schema"):
            arena.validate_report(document)

    def test_rejects_missing_cell_field(self):
        document = self.make_document()
        del document["cells"][0]["utilization"]
        with pytest.raises(ValueError, match="utilization"):
            arena.validate_report(document)

    def test_rejects_negative_counter(self):
        document = self.make_document()
        document["cells"][0]["counters"]["epochs"] = -1
        with pytest.raises(ValueError, match="epochs"):
            arena.validate_report(document)

    def test_rejects_malformed_bound(self):
        document = self.make_document()
        document["cells"][0]["bound"] = {"ok": True}
        with pytest.raises(ValueError, match="bound"):
            arena.validate_report(document)
