"""Unit tests for the workload base interface."""

import pytest

from repro.workloads.base import Access, CORE_ADDRESS_STRIDE, Workload
from tests.workloads.test_stream import FakeCore


class TestAccess:
    def test_defaults(self):
        access = Access(addr=0x40)
        assert not access.is_write
        assert access.gap == 0
        assert access.instructions == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            Access(addr=-1)
        with pytest.raises(ValueError):
            Access(addr=0, gap=-1)
        with pytest.raises(ValueError):
            Access(addr=0, instructions=-1)


class MinimalWorkload(Workload):
    name = "minimal"

    def next_access(self, context):
        return Access(addr=self.base_addr)


class TestBinding:
    def test_bind_sets_rng_and_base(self):
        workload = MinimalWorkload()
        workload.bind(FakeCore(core_id=2))
        assert workload.base_addr == 2 * CORE_ADDRESS_STRIDE
        assert workload.rng is not None
        assert workload.now == 0

    def test_unbound_accessors_raise(self):
        workload = MinimalWorkload()
        with pytest.raises(RuntimeError):
            _ = workload.rng
        with pytest.raises(RuntimeError):
            _ = workload.now

    def test_on_bind_hook_called(self):
        calls = []

        class Hooked(MinimalWorkload):
            def on_bind(self):
                calls.append(self.base_addr)

        workload = Hooked()
        workload.bind(FakeCore(core_id=1))
        assert calls == [CORE_ADDRESS_STRIDE]

    def test_default_on_complete_is_noop(self):
        workload = MinimalWorkload()
        workload.bind(FakeCore())
        workload.on_complete(0, Access(addr=0), now=10)
