"""Unit tests for the phase-alternating streamer (Fig. 6 workload)."""

import pytest

from repro.workloads.periodic import PeriodicStreamWorkload
from tests.workloads.test_stream import FakeCore


def bound(workload, core=None):
    core = core or FakeCore()
    workload.bind(core)
    return workload, core


class TestPhases:
    def test_phase_schedule(self):
        workload = PeriodicStreamWorkload(active_cycles=100, idle_cycles=50)
        assert workload.in_active_phase(0)
        assert workload.in_active_phase(99)
        assert not workload.in_active_phase(100)
        assert not workload.in_active_phase(149)
        assert workload.in_active_phase(150)  # next period

    def test_active_phase_streams_outside_hot_set(self):
        workload, core = bound(
            PeriodicStreamWorkload(
                active_cycles=1000, idle_cycles=1000, hot_set_bytes=4096
            )
        )
        access = workload.next_access(0)
        assert access.addr >= workload.base_addr + 4096

    def test_idle_phase_stays_in_hot_set(self):
        workload, core = bound(
            PeriodicStreamWorkload(
                active_cycles=1000, idle_cycles=1000, hot_set_bytes=4096
            )
        )
        core.advance(1500)  # inside the idle phase
        for _ in range(200):
            access = workload.next_access(0)
            assert access.addr < workload.base_addr + 4096

    def test_validation(self):
        with pytest.raises(ValueError):
            PeriodicStreamWorkload(active_cycles=0)
        with pytest.raises(ValueError):
            PeriodicStreamWorkload(hot_set_bytes=1 << 30, working_set_bytes=1 << 20)
