"""Unit tests for the SPEC CPU2006 synthetic proxies."""

import pytest

from repro.workloads.spec import SPEC_PROFILES, SpecProfile, spec_workload
from tests.workloads.test_stream import FakeCore


def bound(name, seed=0):
    workload = spec_workload(name)
    workload.bind(FakeCore(seed=seed))
    return workload


class TestRegistry:
    def test_contains_the_papers_eight(self):
        expected = {
            "GemsFDTD", "lbm", "libquantum", "mcf",
            "milc", "omnetpp", "soplex", "sphinx3",
        }
        assert set(SPEC_PROFILES) == expected

    def test_factory_rejects_unknown(self):
        with pytest.raises(KeyError, match="unknown SPEC workload"):
            spec_workload("povray")

    def test_profiles_validate(self):
        with pytest.raises(ValueError):
            SpecProfile("x", contexts=0, mean_gap=1, write_fraction=0,
                        random_fraction=0, working_set_bytes=1 << 20,
                        instructions_per_access=1)
        with pytest.raises(ValueError):
            SpecProfile("x", contexts=1, mean_gap=1, write_fraction=2,
                        random_fraction=0, working_set_bytes=1 << 20,
                        instructions_per_access=1)


class TestQualitativeCharacter:
    def test_streaming_proxies_have_more_mlp_than_latency_bound(self):
        assert SPEC_PROFILES["libquantum"].contexts > SPEC_PROFILES["sphinx3"].contexts
        assert SPEC_PROFILES["lbm"].contexts > SPEC_PROFILES["omnetpp"].contexts

    def test_mcf_is_irregular(self):
        assert SPEC_PROFILES["mcf"].random_fraction > 0.5

    def test_libquantum_is_sequential(self):
        assert SPEC_PROFILES["libquantum"].random_fraction == 0.0

    def test_lbm_writes_heavily(self):
        assert SPEC_PROFILES["lbm"].write_fraction > 0.3


class TestGeneration:
    def test_addresses_within_working_set(self):
        workload = bound("mcf")
        limit = workload.base_addr + workload.profile.working_set_bytes
        for _ in range(500):
            access = workload.next_access(0)
            assert workload.base_addr <= access.addr < limit
            assert access.addr % 64 == 0

    def test_gap_mean_tracks_profile(self):
        from dataclasses import replace

        from repro.workloads.spec import SPEC_PROFILES, SpecProxyWorkload

        # disable phasing so every gap draws from the memory-phase mean
        profile = replace(SPEC_PROFILES["sphinx3"], phase_cycles=0)
        workload = SpecProxyWorkload(profile)
        workload.bind(FakeCore())
        gaps = [workload.next_access(0).gap for _ in range(4000)]
        mean = sum(gaps) / len(gaps)
        assert mean == pytest.approx(profile.mean_gap, rel=0.25)

    def test_low_phase_stretches_gaps(self):
        workload = bound("sphinx3")
        memory_phase = workload.in_memory_phase(workload._phase_offset and 0 or 0)
        # force both phases via explicit positions
        profile = workload.profile
        active_pos = 0
        idle_pos = int(profile.duty * profile.phase_cycles) + 1
        workload._phase_offset = 0
        assert workload.in_memory_phase(active_pos)
        assert not workload.in_memory_phase(idle_pos)

    def test_zero_gap_profile_generates_zero_gaps(self):
        profile = SpecProfile("z", contexts=1, mean_gap=0, write_fraction=0,
                              random_fraction=0, working_set_bytes=1 << 20,
                              instructions_per_access=1)
        from repro.workloads.spec import SpecProxyWorkload
        workload = SpecProxyWorkload(profile)
        workload.bind(FakeCore())
        assert all(workload.next_access(0).gap == 0 for _ in range(20))

    def test_write_fraction_approximated(self):
        workload = bound("lbm")
        writes = sum(workload.next_access(0).is_write for _ in range(4000))
        assert writes / 4000 == pytest.approx(
            workload.profile.write_fraction, abs=0.05
        )

    def test_sequential_portion_advances(self):
        workload = bound("libquantum")
        addrs = [workload.next_access(0).addr for _ in range(10)]
        assert addrs == sorted(addrs)

    def test_deterministic_per_seed(self):
        a, b = bound("milc", seed=3), bound("milc", seed=3)
        assert [a.next_access(0).addr for _ in range(50)] == [
            b.next_access(0).addr for _ in range(50)
        ]
