"""Unit tests for the memcached transaction proxy."""

import pytest

from repro.cpu.model import Core
from repro.sim.engine import Engine
from repro.workloads.memcached import MemcachedWorkload


def drive(workload, latency=100):
    """Drive the workload on a real core with constant memory latency."""
    engine = Engine()
    core = Core(
        engine=engine,
        core_id=0,
        qos_id=0,
        workload=workload,
        access_fn=lambda core, access, done: engine.schedule(latency, done),
        on_instructions=lambda qos, count: None,
    )
    core.start()
    engine.run()
    return engine, core


class TestTransactions:
    def test_runs_exactly_requested_transactions(self):
        workload = MemcachedWorkload(transactions=20, warmup_transactions=5)
        drive(workload)
        assert workload.completed_transactions == 25
        assert len(workload.service_times) == 20

    def test_warmup_excluded_from_service_times(self):
        workload = MemcachedWorkload(transactions=10, warmup_transactions=10)
        drive(workload)
        assert len(workload.service_times) == 10

    def test_service_time_scales_with_memory_latency(self):
        fast = MemcachedWorkload(transactions=30, warmup_transactions=2)
        slow = MemcachedWorkload(transactions=30, warmup_transactions=2)
        drive(fast, latency=100)
        drive(slow, latency=500)
        mean_fast = sum(fast.service_times) / len(fast.service_times)
        mean_slow = sum(slow.service_times) / len(slow.service_times)
        assert mean_slow > 2 * mean_fast

    def test_service_time_excludes_think_time(self):
        compute = 10
        workload = MemcachedWorkload(
            transactions=10,
            warmup_transactions=0,
            min_chain=2,
            max_chain=2,
            compute_per_access=compute,
            think_time=10_000,
        )
        drive(workload, latency=50)
        # chain of 3 accesses: first issues after think (excluded), the
        # other two each cost compute + latency
        expected = 50 + 2 * (compute + 50)
        assert all(t == expected for t in workload.service_times)

    def test_unlimited_transactions_until_engine_stops(self):
        workload = MemcachedWorkload(transactions=None, warmup_transactions=0)
        engine = Engine()
        core = Core(
            engine=engine,
            core_id=0,
            qos_id=0,
            workload=workload,
            access_fn=lambda core, access, done: engine.schedule(100, done),
            on_instructions=lambda qos, count: None,
        )
        core.start()
        engine.run_until(200_000)
        assert workload.completed_transactions > 50
        assert not core.done

    def test_addresses_split_hash_and_value_regions(self):
        workload = MemcachedWorkload(
            transactions=50,
            warmup_transactions=0,
            hash_table_bytes=1 << 20,
            value_region_bytes=1 << 20,
        )
        drive(workload)
        # with min_chain >= 1 some accesses must land in each region
        assert workload.completed_transactions == 50

    def test_validation(self):
        with pytest.raises(ValueError):
            MemcachedWorkload(transactions=0)
        with pytest.raises(ValueError):
            MemcachedWorkload(warmup_transactions=-1)
        with pytest.raises(ValueError):
            MemcachedWorkload(min_chain=3, max_chain=2)
