"""Unit tests for streaming workloads."""

import pytest

from repro.sim.engine import Engine
from repro.workloads.base import CORE_ADDRESS_STRIDE
from repro.workloads.stream import StreamWorkload, l3_resident_stream


class FakeCore:
    """Minimal core stand-in for binding workloads in unit tests."""

    def __init__(self, core_id=0, seed=0):
        self.core_id = core_id
        self._engine = Engine(seed)
        self.rng = self._engine.rng(f"core.{core_id}")

    @property
    def now(self):
        return self._engine.now

    def advance(self, cycles):
        self._engine.run_until(self._engine.now + cycles)


def bound(workload, core_id=0):
    workload.bind(FakeCore(core_id))
    return workload


class TestStream:
    def test_addresses_advance_by_stride(self):
        stream = bound(StreamWorkload(stride_bytes=128))
        addrs = [stream.next_access(0).addr for _ in range(4)]
        assert [a - addrs[0] for a in addrs] == [0, 128, 256, 384]

    def test_wraps_at_working_set(self):
        stream = bound(StreamWorkload(working_set_bytes=256, stride_bytes=128))
        addrs = [stream.next_access(0).addr for _ in range(4)]
        assert addrs[2] == addrs[0] and addrs[3] == addrs[1]

    def test_base_address_per_core(self):
        a = bound(StreamWorkload(), core_id=0)
        b = bound(StreamWorkload(), core_id=3)
        assert b.next_access(0).addr - a.next_access(0).addr == 3 * CORE_ADDRESS_STRIDE

    def test_read_only_by_default(self):
        stream = bound(StreamWorkload())
        assert not any(stream.next_access(0).is_write for _ in range(32))

    def test_write_fraction_one_is_all_writes(self):
        stream = bound(StreamWorkload(write_fraction=1.0))
        assert all(stream.next_access(0).is_write for _ in range(32))

    def test_write_fraction_statistics(self):
        stream = bound(StreamWorkload(write_fraction=0.5))
        writes = sum(stream.next_access(0).is_write for _ in range(2000))
        assert 800 < writes < 1200

    def test_gap_and_instructions_propagate(self):
        stream = bound(StreamWorkload(gap=7, instructions_per_access=3))
        access = stream.next_access(0)
        assert access.gap == 7 and access.instructions == 3

    def test_validation(self):
        with pytest.raises(ValueError):
            StreamWorkload(working_set_bytes=0)
        with pytest.raises(ValueError):
            StreamWorkload(stride_bytes=0)
        with pytest.raises(ValueError):
            StreamWorkload(write_fraction=1.5)
        with pytest.raises(ValueError):
            StreamWorkload(contexts=0)

    def test_unbound_workload_raises(self):
        with pytest.raises(RuntimeError):
            StreamWorkload(write_fraction=0.5).next_access(0)


class TestL3ResidentStream:
    def test_working_set_under_partition(self):
        stream = l3_resident_stream(partition_bytes=1 << 20)
        assert stream._working_set <= (1 << 20) // 2

    def test_validation(self):
        with pytest.raises(ValueError):
            l3_resident_stream(0)

    def test_addresses_stay_within_working_set(self):
        stream = bound(l3_resident_stream(partition_bytes=64 << 10))
        base = stream.base_addr
        for _ in range(5000):
            addr = stream.next_access(0).addr
            assert base <= addr < base + (64 << 10)
