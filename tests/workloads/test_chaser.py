"""Unit tests for the pointer-chasing workload."""

import pytest

from repro.workloads.chaser import ChaserWorkload
from tests.workloads.test_stream import FakeCore


def bound(workload, core_id=0, seed=0):
    workload.bind(FakeCore(core_id, seed))
    return workload


class TestChaser:
    def test_contexts_equal_chains(self):
        assert ChaserWorkload(chains=4).contexts == 4

    def test_addresses_line_aligned_and_in_working_set(self):
        chaser = bound(ChaserWorkload(working_set_bytes=1 << 20))
        base = chaser.base_addr
        for _ in range(1000):
            access = chaser.next_access(0)
            assert access.addr % 64 == 0
            assert base <= access.addr < base + (1 << 20)

    def test_addresses_unpredictable(self):
        chaser = bound(ChaserWorkload())
        addrs = {chaser.next_access(0).addr for _ in range(100)}
        assert len(addrs) > 90  # random chase, almost no repeats

    def test_reads_only(self):
        chaser = bound(ChaserWorkload())
        assert not any(chaser.next_access(0).is_write for _ in range(64))

    def test_reproducible_for_same_seed(self):
        a = bound(ChaserWorkload(), seed=5)
        b = bound(ChaserWorkload(), seed=5)
        assert [a.next_access(0).addr for _ in range(20)] == [
            b.next_access(0).addr for _ in range(20)
        ]

    def test_validation(self):
        with pytest.raises(ValueError):
            ChaserWorkload(working_set_bytes=1024)
        with pytest.raises(ValueError):
            ChaserWorkload(chains=0)
