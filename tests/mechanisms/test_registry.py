"""Tests for the mechanism zoo registry."""

import pytest

from repro.baselines.none import NoQosMechanism
from repro.baselines.static_partition import StaticPartitionMechanism
from repro.core.pabst import PabstMechanism
from repro.mechanisms import (
    ALL_MECHANISMS,
    MECHANISMS,
    DpqMechanism,
    LmsArMechanism,
    PerBankRegulatorMechanism,
    make_mechanism,
    register_mechanism,
)
from repro.sim.mechanism import QoSMechanism


class TestRegistry:
    def test_all_expected_names(self):
        assert ALL_MECHANISMS == (
            "none",
            "static-partition",
            "source-only",
            "target-only",
            "pabst",
            "dpq",
            "perbank",
            "lms-ar",
        )

    def test_factories_build_the_right_types(self):
        assert isinstance(make_mechanism("none"), NoQosMechanism)
        assert isinstance(
            make_mechanism("static-partition"), StaticPartitionMechanism
        )
        assert isinstance(make_mechanism("pabst"), PabstMechanism)
        assert isinstance(make_mechanism("dpq"), DpqMechanism)
        assert isinstance(make_mechanism("perbank"), PerBankRegulatorMechanism)
        assert isinstance(make_mechanism("lms-ar"), LmsArMechanism)

    def test_every_name_matches_its_mechanism(self):
        for name in ALL_MECHANISMS:
            mechanism = make_mechanism(name)
            assert isinstance(mechanism, QoSMechanism)
            assert mechanism.name == name

    def test_fresh_instance_per_call(self):
        assert make_mechanism("dpq") is not make_mechanism("dpq")

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown mechanism"):
            make_mechanism("does-not-exist")

    def test_register_rejects_shadowing(self):
        with pytest.raises(ValueError, match="already registered"):
            register_mechanism("pabst", PabstMechanism)

    def test_register_and_remove_custom(self):
        register_mechanism("custom-test-only", QoSMechanism)
        try:
            assert isinstance(
                make_mechanism("custom-test-only"), QoSMechanism
            )
        finally:
            del MECHANISMS["custom-test-only"]


class TestCommonReexport:
    def test_experiments_common_delegates_to_the_zoo(self):
        from repro.experiments import common

        assert common.MECHANISMS is MECHANISMS
        assert common.make_mechanism is make_mechanism
        # the fig* modules' historical names still resolve
        assert isinstance(common.make_mechanism("source-only"), QoSMechanism)
