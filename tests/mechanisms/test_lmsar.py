"""Tests for the LMS-AR predictive regulator."""

import pytest

from repro.mechanisms.lmsar import LmsArMechanism, LmsPredictor
from repro.qos.classes import QoSRegistry
from repro.sim.config import SystemConfig
from repro.sim.system import System
from repro.workloads.stream import StreamWorkload


def make_system(**kwargs):
    config = SystemConfig.small_test()
    registry = QoSRegistry()
    registry.define_class(0, "hi", weight=3)
    registry.define_class(1, "lo", weight=1)
    registry.assign_core(0, 0)
    registry.assign_core(1, 1)
    workloads = {core: StreamWorkload() for core in range(2)}
    mechanism = LmsArMechanism(**kwargs)
    system = System(config, registry, workloads, mechanism=mechanism)
    return system, mechanism


class TestPredictor:
    def test_validation(self):
        with pytest.raises(ValueError):
            LmsPredictor(taps=0)
        with pytest.raises(ValueError):
            LmsPredictor(mu=2.0)
        with pytest.raises(ValueError):
            LmsPredictor(mu=0.0)

    def test_cold_start_is_a_moving_average(self):
        predictor = LmsPredictor(taps=4)
        assert predictor.weights == [0.25] * 4
        assert predictor.predict() == 0.0  # empty history, no guess

    def test_converges_on_a_constant_signal(self):
        predictor = LmsPredictor(taps=4, mu=0.5)
        errors = [abs(predictor.observe(0.6)) for _ in range(50)]
        assert errors[-1] < 1e-3
        assert errors[-1] < errors[0]
        assert predictor.updates == 50

    def test_deterministic(self):
        a, b = LmsPredictor(), LmsPredictor()
        signal = [0.1, 0.5, 0.3, 0.9, 0.2] * 6
        for sample in signal:
            a.observe(sample)
            b.observe(sample)
        assert a.weights == b.weights
        assert a.predict() == b.predict()


class TestMechanism:
    def test_validation(self):
        with pytest.raises(ValueError):
            LmsArMechanism(update_every=0)
        with pytest.raises(ValueError):
            LmsArMechanism(system_setpoint=0.0)
        with pytest.raises(ValueError):
            LmsArMechanism(system_setpoint=1.5)

    def test_source_half_only(self):
        system, mechanism = make_system()
        assert mechanism.name == "lms-ar"
        assert mechanism.pacers and not mechanism.arbiters

    def test_targets_split_the_setpoint_by_weight(self):
        system, mechanism = make_system(system_setpoint=0.8)
        assert mechanism.policies[0].target == pytest.approx(0.6)
        assert mechanism.policies[1].target == pytest.approx(0.2)

    def test_filter_feeds_policy_on_schedule(self):
        system, mechanism = make_system(update_every=3)
        system.run_epochs(9)
        system.finalize()
        for qos_id in (0, 1):
            predictor = mechanism.predictors[qos_id]
            policy = mechanism.policies[qos_id]
            assert predictor.updates == 9  # one observation per epoch
            # every 3rd epoch is a policy update; each lands in exactly
            # one of the two accounting buckets (the satellite-3 fix)
            assert policy.adjustments + policy.deadband_holds == 3

    def test_deterministic_end_to_end(self):
        def weights_after_run():
            system, mechanism = make_system()
            system.run_epochs(10)
            system.finalize()
            return {
                qos_id: mechanism.predictors[qos_id].weights
                for qos_id in mechanism.predictors
            }, system.registry.weight(0)

        first = weights_after_run()
        second = weights_after_run()
        assert first == second
