"""Tests for the DPQ bounded-latency arbiter."""

import pytest

from repro.mechanisms.dpq import DpqMechanism, DpqPolicy
from repro.qos.classes import QoSRegistry
from repro.sim.config import SystemConfig
from repro.sim.records import AccessType, MemoryRequest
from repro.sim.system import System
from repro.workloads.stream import StreamWorkload


def read(qos_id, arrived, addr=0):
    req = MemoryRequest(
        addr=addr, access=AccessType.READ, qos_id=qos_id, core_id=0
    )
    req.arrived_mc_at = arrived
    return req


def write(qos_id, arrived):
    req = MemoryRequest(
        addr=0, access=AccessType.WRITE, qos_id=qos_id, core_id=0
    )
    req.arrived_mc_at = arrived
    return req


class TestPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            DpqPolicy([], bound_cycles=100)
        with pytest.raises(ValueError):
            DpqPolicy([0, 1], bound_cycles=0)

    def test_served_class_rotates_to_back(self):
        policy = DpqPolicy([0, 1, 2], bound_cycles=1000)
        chosen = policy.pick([read(0, 10), read(1, 5)], banks=None, now=20)
        assert chosen.qos_id == 0  # class 0 has priority despite being newer
        assert policy.order == [1, 2, 0]
        assert policy.rotations == 1

    def test_rotation_gives_every_class_a_turn(self):
        """Priority property: with all classes always ready, service
        round-robins — no class is picked twice before the others."""
        policy = DpqPolicy([0, 1, 2], bound_cycles=1000)
        served = []
        for now in range(9):
            candidates = [read(qos_id, now) for qos_id in (0, 1, 2)]
            served.append(policy.pick(candidates, banks=None, now=now).qos_id)
        for start in range(0, 9, 3):
            assert sorted(served[start : start + 3]) == [0, 1, 2]

    def test_oldest_first_within_a_class(self):
        policy = DpqPolicy([0], bound_cycles=1000)
        older, newer = read(0, 3), read(0, 7)
        chosen = policy.pick([newer, older], banks=None, now=10)
        assert chosen is older

    def test_req_id_breaks_arrival_ties(self):
        policy = DpqPolicy([0], bound_cycles=1000)
        first, second = read(0, 5), read(0, 5)
        assert first.req_id < second.req_id
        chosen = policy.pick([second, first], banks=None, now=10)
        assert chosen is first

    def test_writes_fall_back_to_oldest_first(self):
        policy = DpqPolicy([0, 1], bound_cycles=1000)
        older, newer = write(1, 2), write(0, 8)
        chosen = policy.pick([newer, older], banks=None, now=10)
        assert chosen is older
        assert policy.order == [0, 1]  # write drains do not rotate

    def test_bound_violations_counted_not_assumed(self):
        policy = DpqPolicy([0], bound_cycles=100)
        policy.pick([read(0, 0)], banks=None, now=500)
        assert policy.bound_violations == 1
        assert policy.max_observed_wait == 500
        assert policy.max_wait(0) == 500


class TestMechanism:
    def make_system(self):
        config = SystemConfig.small_test()
        registry = QoSRegistry()
        registry.define_class(0, "hi", weight=3)
        registry.define_class(1, "lo", weight=1)
        registry.assign_core(0, 0)
        registry.assign_core(1, 1)
        workloads = {core: StreamWorkload() for core in range(2)}
        mechanism = DpqMechanism()
        system = System(config, registry, workloads, mechanism=mechanism)
        return system, mechanism

    def test_one_policy_per_controller_with_model_bound(self):
        system, mechanism = self.make_system()
        config = system.config
        assert set(mechanism.policies) == set(range(config.num_mcs))
        expected = (
            2 * config.frontend_read_queue + config.frontend_write_queue
        ) * config.dram.closed_page_service
        assert mechanism.bound_cycles == expected
        assert mechanism.mc_policy(0) is mechanism.policies[0]
        assert mechanism.mc_policy(99) is None

    def test_bound_holds_end_to_end(self):
        """Invariant: every front-end wait the arbiter served stayed
        under the model's worst-case access latency bound."""
        system, mechanism = self.make_system()
        system.run_epochs(12)
        system.finalize()
        report = mechanism.bound_report()
        assert report["kind"] == "dpq-access-latency"
        assert report["ok"] is True
        assert report["violations"] == 0
        picks = sum(p.picks for p in mechanism.policies.values())
        assert picks > 0  # the policy actually arbitrated
        assert 0 < report["max_observed"] <= report["bound"]

    def test_uniform_counters_tick(self):
        system, mechanism = self.make_system()
        system.run_epochs(4)
        system.finalize()
        assert mechanism.obs_epochs == 4
        assert mechanism.obs_releases_granted > 0
        assert mechanism.obs_releases_denied == 0  # target-side only
