"""Tests for the per-bank bandwidth regulator."""

import pytest

from repro.mechanisms.perbank import PerBankRegulatorMechanism
from repro.qos.classes import QoSRegistry
from repro.sim.config import SystemConfig
from repro.sim.records import AccessType, MemoryRequest
from repro.sim.system import System
from repro.workloads.stream import StreamWorkload


def make_system(accesses_per_bank=None):
    config = SystemConfig.small_test()
    registry = QoSRegistry()
    registry.define_class(0, "hi", weight=3)
    registry.define_class(1, "lo", weight=1)
    registry.assign_core(0, 0)
    registry.assign_core(1, 1)
    workloads = {core: StreamWorkload() for core in range(2)}
    mechanism = PerBankRegulatorMechanism(accesses_per_bank=accesses_per_bank)
    system = System(config, registry, workloads, mechanism=mechanism)
    return system, mechanism


class TestValidation:
    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError):
            PerBankRegulatorMechanism(accesses_per_bank=0)


class TestBudgets:
    def test_budgets_split_by_weight(self):
        system, mechanism = make_system(accesses_per_bank=8)
        config = system.config
        triples = config.num_mcs * config.banks_per_mc
        hi = [k for k in mechanism.budgets if k[0] == 0]
        lo = [k for k in mechanism.budgets if k[0] == 1]
        assert len(hi) == len(lo) == triples
        assert all(mechanism.budgets[k] == 6 for k in hi)  # 3/4 of 8
        assert all(mechanism.budgets[k] == 2 for k in lo)  # 1/4 of 8

    def test_default_budget_from_service_capacity(self):
        system, mechanism = make_system()
        config = system.config
        per_bank = config.epoch_cycles // config.dram.closed_page_service
        assert max(mechanism.budgets.values()) <= max(1, per_bank)


class TestRegulationWindow:
    def test_denies_park_until_the_next_epoch(self):
        system, mechanism = make_system(accesses_per_bank=4)
        key = (0, 0, 0)
        budget = mechanism.budgets[key]
        granted = []
        req = MemoryRequest(
            addr=0, access=AccessType.READ, qos_id=0, core_id=0
        )
        assert system.address_map.decode(0)[1:3] == (0, 0)
        for i in range(budget + 2):
            mechanism.request_release(0, req, lambda i=i: granted.append(i))
        assert granted == list(range(budget))
        assert mechanism.parked == 2
        assert mechanism.obs_releases_denied == 2
        mechanism.on_epoch(saturated=False)
        assert granted == list(range(budget + 2))
        assert mechanism.parked == 0

    def test_fifo_order_preserved_across_windows(self):
        system, mechanism = make_system(accesses_per_bank=4)
        key = (0, 0, 0)
        budget = mechanism.budgets[key]
        order = []
        req = MemoryRequest(
            addr=0, access=AccessType.READ, qos_id=0, core_id=0
        )
        for i in range(2 * budget):
            mechanism.request_release(0, req, lambda i=i: order.append(i))
        mechanism.on_epoch(saturated=False)
        assert order == list(range(2 * budget))


class TestInvariant:
    def test_no_epoch_exceeds_its_budget_end_to_end(self):
        """Invariant: in no epoch is any (class, mc, bank) triple granted
        more releases than its budget — checked per epoch boundary, and
        the regulator must actually have regulated (some denies)."""
        system, mechanism = make_system(accesses_per_bank=2)
        system.run_epochs(12)
        system.finalize()
        report = mechanism.bound_report()
        assert report["kind"] == "perbank-epoch-budget"
        assert report["ok"] is True
        assert mechanism.budget_overruns == 0
        assert mechanism.obs_releases_denied > 0
        assert 0 < report["max_observed"] <= report["bound"]

    def test_synthetic_overrun_is_detected(self):
        """The counter is a real check: force an over-budget grant and
        the epoch close must flag it."""
        system, mechanism = make_system(accesses_per_bank=2)
        key = (0, 0, 0)
        for _ in range(mechanism.budgets[key] + 1):
            mechanism._grant(key, lambda: None)
        mechanism.on_epoch(saturated=False)
        assert mechanism.budget_overruns == 1
        assert mechanism.bound_report()["ok"] is False
