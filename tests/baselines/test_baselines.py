"""Unit tests for the baseline mechanisms."""

import pytest

from repro.baselines.none import NoQosMechanism
from repro.baselines.source_only import SourceOnlyMechanism
from repro.baselines.static_partition import static_partition_config
from repro.baselines.target_only import TargetOnlyMechanism
from repro.core.config import PabstConfig
from repro.qos.classes import QoSRegistry
from repro.sim.config import SystemConfig
from repro.sim.records import AccessType, MemoryRequest
from repro.sim.system import System
from repro.workloads.stream import StreamWorkload


def make_system(mechanism):
    config = SystemConfig.small_test()
    registry = QoSRegistry()
    registry.define_class(0, "a", weight=1)
    registry.define_class(1, "b", weight=1)
    registry.assign_core(0, 0)
    registry.assign_core(1, 1)
    workloads = {core: StreamWorkload() for core in range(2)}
    return System(config, registry, workloads, mechanism=mechanism)


class TestNoQos:
    def test_name(self):
        assert NoQosMechanism().name == "none"

    def test_release_is_immediate(self):
        mechanism = NoQosMechanism()
        released = []
        req = MemoryRequest(addr=0, access=AccessType.READ, qos_id=0, core_id=0)
        mechanism.request_release(0, req, lambda: released.append(True))
        assert released == [True]

    def test_no_mc_policy_override(self):
        assert NoQosMechanism().mc_policy(0) is None

    def test_multiplier_not_applicable(self):
        assert NoQosMechanism().multiplier() == -1


class TestSourceOnly:
    def test_has_governors_no_arbiters(self):
        mechanism = SourceOnlyMechanism()
        make_system(mechanism)
        assert mechanism.pacers and not mechanism.arbiters
        assert mechanism.name == "source-only"

    def test_accepts_custom_config(self):
        mechanism = SourceOnlyMechanism(PabstConfig(inertia=9))
        assert mechanism.config.inertia == 9


class TestTargetOnly:
    def test_has_arbiters_no_governors(self):
        mechanism = TargetOnlyMechanism()
        make_system(mechanism)
        assert mechanism.arbiters and not mechanism.pacers
        assert mechanism.name == "target-only"

    def test_release_is_immediate_without_governor(self):
        mechanism = TargetOnlyMechanism()
        make_system(mechanism)
        released = []
        req = MemoryRequest(addr=0, access=AccessType.READ, qos_id=0, core_id=0)
        mechanism.request_release(0, req, lambda: released.append(True))
        assert released == [True]


class TestStaticPartition:
    def test_quarter_bandwidth(self):
        base = SystemConfig.default_experiment()
        scaled = static_partition_config(base, 4)
        assert scaled.peak_bandwidth == pytest.approx(base.peak_bandwidth / 4)

    def test_identity(self):
        base = SystemConfig.default_experiment()
        assert static_partition_config(base, 1).peak_bandwidth == base.peak_bandwidth

    def test_validation(self):
        with pytest.raises(ValueError):
            static_partition_config(SystemConfig(), 0)
