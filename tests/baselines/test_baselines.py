"""Unit tests for the baseline mechanisms."""

import pytest

from repro.baselines.none import NoQosMechanism
from repro.baselines.source_only import SourceOnlyMechanism
from repro.baselines.static_partition import (
    StaticPartitionMechanism,
    static_partition_config,
)
from repro.baselines.target_only import TargetOnlyMechanism
from repro.core.config import PabstConfig
from repro.mechanisms import make_mechanism
from repro.qos.classes import QoSRegistry
from repro.sim.config import SystemConfig
from repro.sim.records import AccessType, MemoryRequest
from repro.sim.system import System
from repro.workloads.stream import StreamWorkload


def make_system(mechanism, config=None):
    config = config or SystemConfig.small_test()
    registry = QoSRegistry()
    registry.define_class(0, "a", weight=1)
    registry.define_class(1, "b", weight=1)
    registry.assign_core(0, 0)
    registry.assign_core(1, 1)
    workloads = {core: StreamWorkload() for core in range(2)}
    return System(config, registry, workloads, mechanism=mechanism)


class TestNoQos:
    def test_name(self):
        assert NoQosMechanism().name == "none"

    def test_release_is_immediate(self):
        mechanism = NoQosMechanism()
        released = []
        req = MemoryRequest(addr=0, access=AccessType.READ, qos_id=0, core_id=0)
        mechanism.request_release(0, req, lambda: released.append(True))
        assert released == [True]

    def test_no_mc_policy_override(self):
        assert NoQosMechanism().mc_policy(0) is None

    def test_multiplier_not_applicable(self):
        assert NoQosMechanism().multiplier() == -1


class TestSourceOnly:
    def test_has_governors_no_arbiters(self):
        mechanism = SourceOnlyMechanism()
        make_system(mechanism)
        assert mechanism.pacers and not mechanism.arbiters
        assert mechanism.name == "source-only"

    def test_accepts_custom_config(self):
        mechanism = SourceOnlyMechanism(PabstConfig(inertia=9))
        assert mechanism.config.inertia == 9


class TestTargetOnly:
    def test_has_arbiters_no_governors(self):
        mechanism = TargetOnlyMechanism()
        make_system(mechanism)
        assert mechanism.arbiters and not mechanism.pacers
        assert mechanism.name == "target-only"

    def test_release_is_immediate_without_governor(self):
        mechanism = TargetOnlyMechanism()
        make_system(mechanism)
        released = []
        req = MemoryRequest(addr=0, access=AccessType.READ, qos_id=0, core_id=0)
        mechanism.request_release(0, req, lambda: released.append(True))
        assert released == [True]


class TestStaticPartition:
    def test_quarter_bandwidth(self):
        base = SystemConfig.default_experiment()
        scaled = static_partition_config(base, 4)
        assert scaled.peak_bandwidth == pytest.approx(base.peak_bandwidth / 4)

    def test_identity(self):
        base = SystemConfig.default_experiment()
        assert static_partition_config(base, 1).peak_bandwidth == base.peak_bandwidth

    def test_identity_preserves_every_timing(self):
        base = SystemConfig.default_experiment()
        assert static_partition_config(base, 1).dram == base.dram

    def test_all_timings_stretch_by_the_divisor(self):
        base = SystemConfig.default_experiment()
        for divisor in (2, 3, 8):
            scaled = static_partition_config(base, divisor).dram
            assert scaled.t_rcd == base.dram.t_rcd * divisor
            assert scaled.t_cl == base.dram.t_cl * divisor
            assert scaled.t_rp == base.dram.t_rp * divisor
            assert scaled.t_burst == base.dram.t_burst * divisor

    def test_bandwidth_scales_one_over_n(self):
        base = SystemConfig.default_experiment()
        for divisor in (2, 3, 8):
            scaled = static_partition_config(base, divisor)
            assert scaled.peak_bandwidth == pytest.approx(
                base.peak_bandwidth / divisor
            )

    def test_validation(self):
        with pytest.raises(ValueError):
            static_partition_config(SystemConfig(), 0)

    def test_mechanism_validation(self):
        with pytest.raises(ValueError):
            StaticPartitionMechanism(share_divisor=0)

    def test_mechanism_rewrites_the_config(self):
        mechanism = StaticPartitionMechanism(share_divisor=2)
        system = make_system(mechanism)
        base = SystemConfig.small_test()
        assert system.config.dram == base.dram.frequency_scaled(2)

    def test_mechanism_defaults_to_class_count(self):
        system = make_system(StaticPartitionMechanism())
        base = SystemConfig.small_test()
        assert system.config.dram == base.dram.frequency_scaled(2)


class TestMechanismWrapperEquivalence:
    """Each baseline's mechanism object reproduces its config/ctor path
    byte-for-byte (same per-epoch stats records)."""

    def run_epochs(self, system, epochs=6):
        system.run_epochs(epochs)
        system.finalize()
        return system.stats.epochs

    def test_static_partition_object_matches_config_path(self):
        scaled = static_partition_config(SystemConfig.small_test(), 2)
        via_config = self.run_epochs(make_system(None, config=scaled))
        via_object = self.run_epochs(
            make_system(StaticPartitionMechanism(share_divisor=2))
        )
        assert via_object == via_config

    @pytest.mark.parametrize(
        "name, ctor",
        [
            ("none", NoQosMechanism),
            ("source-only", SourceOnlyMechanism),
            ("target-only", TargetOnlyMechanism),
        ],
    )
    def test_registry_object_matches_direct_construction(self, name, ctor):
        via_registry = self.run_epochs(make_system(make_mechanism(name)))
        via_ctor = self.run_epochs(make_system(ctor()))
        assert via_registry == via_ctor
