"""Golden-diagnostics corpus: the analyzer's JSON output is byte-compared.

Each ``corpus/<case>/proj`` package seeds known violations for one
whole-program rule family; ``corpus/<case>/expected.json`` is the
committed full JSON output.  Byte comparison pins file:line:code *and*
message wording — any analyzer change that shifts output must update
the golden files deliberately.
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

import pytest

from repro.devtools.analysis import analyze_index
from repro.devtools.analysis.symbols import build_index
from repro.devtools.formats import render_json
from repro.devtools.lint import lint_source

CORPUS = Path(__file__).parent / "corpus"
CASES = sorted(p.name for p in CORPUS.iterdir() if (p / "proj").is_dir())

#: Each new rule family must catch at least two distinct seeded
#: violations somewhere in the corpus (acceptance criterion).
FAMILY_MINIMUMS = {"DET1": 2, "HOT": 2, "CKPT": 2, "OBS": 2, "PERF": 2}


def _case_output(case: str) -> str:
    """Whole-program analysis plus per-file lint over one case's proj tree.

    Per-file confinement rules (PERFxxx) only apply to paths under a
    ``repro`` package dir, so each file is linted under a synthetic
    ``repro/`` prefix — the case's ``proj`` tree stands in for the real
    package.  Keeping the prefix synthetic (no on-disk ``repro`` dir)
    means the repo-wide lint sweep never trips over seeded violations.
    """
    case_dir = CORPUS / case
    index = build_index(case_dir / "proj", package="proj")
    diags = [
        dataclasses.replace(d, path=str(Path(d.path).relative_to(case_dir)))
        for d in analyze_index(index)
    ]
    for source in sorted((case_dir / "proj").rglob("*.py")):
        rel = source.relative_to(case_dir / "proj").as_posix()
        diags.extend(
            dataclasses.replace(d, path=f"proj/{rel}")
            for d in lint_source(source.read_text(encoding="utf-8"), f"repro/{rel}")
        )
    diags.sort(key=lambda d: (d.path, d.line, d.col, d.code))
    return render_json(diags) + "\n"


@pytest.mark.parametrize("case", CASES)
def test_corpus_case_matches_golden_bytes(case):
    expected = (CORPUS / case / "expected.json").read_text(encoding="utf-8")
    assert _case_output(case) == expected


def test_corpus_output_is_deterministic():
    case = CASES[0]
    assert _case_output(case) == _case_output(case)


def test_each_family_catches_at_least_two_seeded_violations():
    codes: list[str] = []
    for case in CASES:
        payload = json.loads(
            (CORPUS / case / "expected.json").read_text(encoding="utf-8")
        )
        codes.extend(entry["code"] for entry in payload)
    for prefix, minimum in FAMILY_MINIMUMS.items():
        family = [code for code in codes if code.startswith(prefix)]
        assert len(family) >= minimum, f"{prefix}xx seeded only {family}"
        # distinct findings, not one finding repeated
        assert len(set(family)) >= 1 and len(family) >= minimum


def test_corpus_findings_have_stable_locations():
    for case in CASES:
        payload = json.loads(
            (CORPUS / case / "expected.json").read_text(encoding="utf-8")
        )
        assert payload, f"corpus case {case} seeded no findings"
        for entry in payload:
            assert entry["path"].startswith("proj/")
            assert entry["line"] > 0
            assert entry["code"]
