"""Tests for placeholder-justification handling in the lint baseline."""

import pytest

from repro.devtools.baseline import (
    Baseline,
    PLACEHOLDER_JUSTIFICATION,
    is_placeholder,
)
from repro.devtools.lint import Diagnostic, main
from repro.obs.warnings import reset_warning_counters, warning_counts


def diag(path="src/repro/sim/x.py", code="DET003", message="wall clock"):
    return Diagnostic(path=path, line=5, col=0, code=code, message=message)


BAD_SOURCE = (
    "import time\n"
    "\n"
    "\n"
    "def stamp():\n"
    "    return time.time()\n"
)


@pytest.fixture
def tree(tmp_path):
    """A src/repro-shaped tree with one DET003 finding."""
    package = tmp_path / "src" / "repro" / "sim"
    package.mkdir(parents=True)
    (package / "bad.py").write_text(BAD_SOURCE, encoding="utf-8")
    return tmp_path


class TestIsPlaceholder:
    def test_placeholder_forms(self):
        assert is_placeholder(PLACEHOLDER_JUSTIFICATION)
        assert is_placeholder("")
        assert is_placeholder("   ")
        assert is_placeholder("todo later")
        assert not is_placeholder("hash() keys a non-deterministic cache")


class TestFromDiagnostics:
    def test_defaults_to_placeholder(self):
        baseline = Baseline.from_diagnostics([diag()])
        assert baseline.entries[0].justification == PLACEHOLDER_JUSTIFICATION
        assert len(baseline.placeholder_entries()) == 1

    def test_carries_reviewed_justifications_forward(self):
        previous = Baseline.from_diagnostics([diag()])
        object.__setattr__(
            previous.entries[0], "justification", "reviewed: benign"
        )
        rebuilt = Baseline.from_diagnostics(
            [diag()], justifications=previous.justifications()
        )
        assert rebuilt.entries[0].justification == "reviewed: benign"
        assert not rebuilt.placeholder_entries()

    def test_justifications_skips_placeholders(self):
        baseline = Baseline.from_diagnostics([diag()])
        assert baseline.justifications() == {}


class TestUpdateBaselineCli:
    def run_lint(self, tree, *extra):
        import os

        cwd = os.getcwd()
        os.chdir(tree)
        try:
            return main(
                ["src", "--no-whole-program", "--baseline", "bl.json", *extra]
            )
        finally:
            os.chdir(cwd)

    def test_refuses_new_placeholders_without_accept_todo(
        self, tree, capsys
    ):
        assert self.run_lint(tree, "--update-baseline") == 2
        assert not (tree / "bl.json").exists()
        assert "refusing" in capsys.readouterr().err

    def test_accept_todo_writes_with_warning(self, tree, capsys):
        assert self.run_lint(tree, "--update-baseline", "--accept-todo") == 0
        assert (tree / "bl.json").exists()
        captured = capsys.readouterr()
        assert "placeholder justifications" in captured.err
        baseline = Baseline.load(tree / "bl.json")
        assert len(baseline.placeholder_entries()) == 1

    def test_load_warns_on_placeholder_entries(self, tree, capsys):
        self.run_lint(tree, "--update-baseline", "--accept-todo")
        capsys.readouterr()
        reset_warning_counters()
        assert self.run_lint(tree) == 0  # finding suppressed
        assert warning_counts().get("lint.baseline_todo") == 1
        assert "placeholder justification" in capsys.readouterr().err

    def test_reviewed_baseline_loads_silently(self, tree, capsys):
        self.run_lint(tree, "--update-baseline", "--accept-todo")
        baseline = Baseline.load(tree / "bl.json")
        entries = [
            type(entry)(
                path=entry.path,
                code=entry.code,
                message=entry.message,
                line=entry.line,
                justification="reviewed: test fixture",
            )
            for entry in baseline.entries
        ]
        Baseline(entries).save(tree / "bl.json")
        capsys.readouterr()
        reset_warning_counters()
        assert self.run_lint(tree) == 0
        assert "placeholder" not in capsys.readouterr().err
        assert "lint.baseline_todo" not in warning_counts()

    def test_update_preserves_reviewed_justifications(self, tree):
        self.run_lint(tree, "--update-baseline", "--accept-todo")
        baseline = Baseline.load(tree / "bl.json")
        entries = [
            type(entry)(
                path=entry.path,
                code=entry.code,
                message=entry.message,
                line=entry.line,
                justification="reviewed: kept on purpose",
            )
            for entry in baseline.entries
        ]
        Baseline(entries).save(tree / "bl.json")
        # re-update: the reviewed text must survive, no --accept-todo needed
        assert self.run_lint(tree, "--update-baseline") == 0
        reloaded = Baseline.load(tree / "bl.json")
        assert reloaded.entries[0].justification == "reviewed: kept on purpose"


class TestRepoBaselineIsReviewed:
    def test_committed_baseline_has_no_placeholders(self):
        """The repo's own baseline must never regress to TODO stubs."""
        baseline = Baseline.load("LINT_BASELINE.json")
        assert baseline.entries, "expected the committed baseline to load"
        assert baseline.placeholder_entries() == []
