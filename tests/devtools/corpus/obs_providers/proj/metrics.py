"""Seeded OBS violations: typo'd, missing, and method providers."""


class CacheStats:
    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0

    @property
    def ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class Registry:
    def register_counter(self, name, obj, attr):
        pass

    def register_gauge(self, name, obj, attr):
        pass


def wire(registry: Registry, stats: CacheStats) -> None:
    registry.register_counter("cache.hits", stats, "hits")
    registry.register_counter("cache.misses", stats, "missess")
    registry.register_gauge("cache.ratio", stats, "ratio")
    registry.register_gauge("cache.evictions", stats, "evictions")
    registry.register_counter("cache.reset", stats, "reset")
