"""Seeded violations: nondeterministic helpers two calls from any sink."""

import time


def jitter_cycles():
    return int(time.time_ns())


def entropy_token():
    return hash(object())  # repro: noqa[DET001]
