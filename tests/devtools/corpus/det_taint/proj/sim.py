"""DET101: the tainted values cross a module boundary before posting."""

from proj.clock import entropy_token, jitter_cycles


class Engine:
    def __init__(self) -> None:
        self.now = 0

    def post(self, delay, fn):
        pass

    def post_at(self, when, fn):
        pass


def tick():
    pass


def arm_timer(engine: Engine):
    engine.post_at(jitter_cycles(), tick)


def arm_backoff(engine: Engine):
    backoff = entropy_token() % 64
    engine.post(backoff, tick)
