"""DET102: OS entropy and uuid noise reaching seed derivation."""

import os
import uuid

from numpy.random import SeedSequence, default_rng


def boot_entropy():
    return os.urandom(8)


def make_seed_sequence():
    return SeedSequence(boot_entropy())


def make_generator():
    token = uuid.uuid4().int
    return default_rng(seed=token)
