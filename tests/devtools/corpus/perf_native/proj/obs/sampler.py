"""Seeded PERF005 violations: native-code loading outside accel/.

The corpus harness lints each case's ``proj`` tree as if it were the
``repro`` package, so ``obs/sampler.py`` here is subject to the same
confinement rule as the real observability layer: compiling, loading,
or calling into a native extension is ``accel/``'s job — a stray
``.so`` bypasses backend selection and the byte-identity contract.
"""

import ctypes
from importlib.machinery import ExtensionFileLoader


def load_fast_sampler(path):
    return ExtensionFileLoader("_sampler", path).load_module()


def read_hw_counter(library):
    lib = ctypes.CDLL(library)
    return lib.read_counter()
