"""Seeded HOT violations inside marked kernels."""


class Wheel:
    def __init__(self) -> None:
        self.buckets = [[], []]
        self.count = 0

    def drain(self, deadline: int, **opts):  # repro: hot-kernel
        total = 0
        while total < deadline:
            pending = [entry for entry in self.buckets[0]]
            eval("total")
            total += len(pending)
        return total

    def scan(self, when):  # repro: hot-kernel
        scale = 1.5
        matches = ()
        for bucket in self.buckets:
            matches = {entry for entry in bucket}
            probe = lambda: when + self.count
            probe()
        return scale, matches
