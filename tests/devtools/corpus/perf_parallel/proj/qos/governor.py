"""Seeded PERF004 violations: worker pools inside simulation code.

The corpus harness lints each case's ``proj`` tree as if it were the
``repro`` package, so ``qos/governor.py`` here is subject to the same
confinement rules as the real governor: process parallelism belongs in
``runner/`` or ``sim/shard.py``, never next to the epoch control loop.
"""

import multiprocessing
from concurrent.futures import ProcessPoolExecutor


def recompute_shares(signals):
    with ProcessPoolExecutor(max_workers=2) as pool:
        return list(pool.map(sum, signals))


def spawn_sampler(target):
    proc = multiprocessing.Process(target=target)
    proc.start()
    return proc
