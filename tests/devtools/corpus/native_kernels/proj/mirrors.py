"""Seeded HOT006 violations: manifest and markers disagree both ways."""

NATIVE_KERNELS = {
    "proj.mirrors.Wheel.step": "wheel_step",
    "proj.mirrors.Wheel.drain": "wheel_drain",
}


class Wheel:
    def step(self, now: int) -> int:  # repro: native-kernel
        return now + 1

    def drain(self, now: int) -> int:
        # declared in NATIVE_KERNELS but the def line has no marker
        return now

    def flush(self, now: int) -> int:  # repro: native-kernel
        # marked but absent from NATIVE_KERNELS
        return now
