"""Seeded CKPT violations reachable from the System field graph."""

import threading


class TraceSink:
    def __init__(self, path: str):
        self.handle = open(path, "a")
        self.render = lambda line: line.strip()


class System:
    def __init__(self, trace: TraceSink):
        self.guard = threading.Lock()
        self.trace = trace
        self.samples = (value * value for value in range(4))
