"""Edge cases for ``# repro: noqa`` scoping, path validation, and fixes."""

from __future__ import annotations

import textwrap

import pytest

from repro.devtools.fixes import fix_source
from repro.devtools.lint import (
    LintUsageError,
    lint_paths,
    lint_source,
    main,
)


def _codes(source: str, path: str = "src/repro/sim/x.py") -> list[str]:
    return [d.code for d in lint_source(textwrap.dedent(source), path)]


# ----------------------------------------------------------------------
# noqa scoping
# ----------------------------------------------------------------------
def test_noqa_on_last_line_of_multiline_statement_suppresses():
    assert _codes(
        """\
        def f(now):
            return (
                now /
                4
            )  # repro: noqa[DET004]
        """
    ) == []


def test_noqa_inside_multiline_statement_span_suppresses():
    assert _codes(
        """\
        def f(now):
            return (
                now /  # repro: noqa[DET004]
                4
            )
        """
    ) == []


def test_multiline_statement_without_noqa_still_fires():
    assert _codes(
        """\
        def f(now):
            return (
                now /
                4
            )
        """
    ) == ["DET004"]


def test_noqa_on_def_line_suppresses_body_findings():
    assert _codes(
        """\
        def f(now):  # repro: noqa[DET004]
            a = now / 2
            b = now / 4
            return a, b
        """
    ) == []


def test_noqa_on_def_line_only_suppresses_named_codes():
    assert _codes(
        """\
        def f(now):  # repro: noqa[DET004]
            x = hash(now)
            return now / 2, x
        """
    ) == ["DET001"]


def test_noqa_on_decorated_def_line_suppresses_body():
    assert _codes(
        """\
        import functools

        @functools.lru_cache
        def f(now):  # repro: noqa[DET004]
            return now / 2
        """
    ) == []


def test_noqa_on_decorator_line_does_not_suppress_body():
    # the def line anchors the scope, not the decorator line
    assert _codes(
        """\
        import functools

        @functools.lru_cache  # repro: noqa[DET004]
        def f(now):
            return now / 2
        """
    ) == ["DET004"]


def test_noqa_on_nested_def_does_not_leak_to_outer_body():
    assert _codes(
        """\
        def outer(now):
            def inner(when):  # repro: noqa[DET004]
                return when / 2
            return now / 4
        """
    ) == ["DET004"]


# ----------------------------------------------------------------------
# lint_paths validation + de-duplication
# ----------------------------------------------------------------------
def test_lint_paths_errors_on_nonexistent_path(tmp_path):
    with pytest.raises(LintUsageError, match="no such file or directory"):
        lint_paths([tmp_path / "missing_dir"])


def test_lint_paths_errors_on_non_python_file(tmp_path):
    readme = tmp_path / "README.md"
    readme.write_text("hello\n", encoding="utf-8")
    with pytest.raises(LintUsageError, match="not a Python file"):
        lint_paths([readme])


def test_main_exit_2_on_bad_paths(tmp_path, capsys):
    assert main([str(tmp_path / "missing")]) == 2
    assert "no such file or directory" in capsys.readouterr().err


def test_overlapping_paths_do_not_duplicate_diagnostics(tmp_path):
    package = tmp_path / "pkg"
    package.mkdir()
    bad = package / "bad.py"
    bad.write_text("x = hash('k')\n", encoding="utf-8")
    once = lint_paths([package])
    twice = lint_paths([package, bad, package])
    assert [d.format() for d in twice] == [d.format() for d in once]
    assert len(once) == 1


# ----------------------------------------------------------------------
# autofixes
# ----------------------------------------------------------------------
def test_fix_rewrites_timestamp_division_to_floor_division():
    fixed, count = fix_source("def f(now):\n    return now / 4\n")
    assert count == 1
    assert "now // 4" in fixed


def test_fix_wraps_bare_set_iteration_in_sorted():
    fixed, count = fix_source(
        "def f():\n    for x in {3, 1}:\n        print(x)\n"
    )
    assert count == 1
    assert "for x in sorted({3, 1}):" in fixed


def test_fix_skips_noqa_suppressed_findings():
    source = "def f(now):\n    return now / 4  # repro: noqa[DET004]\n"
    fixed, count = fix_source(source)
    assert count == 0 and fixed == source


def test_fixed_output_lints_clean():
    fixed, _ = fix_source(
        "def f(now):\n"
        "    for x in {3, 1}:\n"
        "        print(x / 1)\n"
        "    return now / 4\n"
    )
    assert [d.code for d in lint_source(fixed)] == []


def test_fix_paths_end_to_end(tmp_path):
    target = tmp_path / "mod.py"
    target.write_text("def f(now):\n    return now / 4\n", encoding="utf-8")
    assert main([str(target), "--fix", "--no-whole-program"]) == 0
    assert "now // 4" in target.read_text(encoding="utf-8")


# ----------------------------------------------------------------------
# output formats through main
# ----------------------------------------------------------------------
def test_json_output_written_to_file(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("x = hash('k')\n", encoding="utf-8")
    out = tmp_path / "diags.json"
    code = main([str(bad), "--format=json", "--output", str(out),
                 "--no-whole-program", "--no-baseline"])
    assert code == 1
    import json

    payload = json.loads(out.read_text(encoding="utf-8"))
    assert payload[0]["code"] == "DET001"


def test_sarif_output_shape(tmp_path):
    bad = tmp_path / "bad.py"
    bad.write_text("x = hash('k')\n", encoding="utf-8")
    out = tmp_path / "diags.sarif"
    main([str(bad), "--format=sarif", "--output", str(out),
          "--no-whole-program", "--no-baseline"])
    import json

    sarif = json.loads(out.read_text(encoding="utf-8"))
    assert sarif["version"] == "2.1.0"
    run = sarif["runs"][0]
    assert run["tool"]["driver"]["name"] == "repro-lint"
    assert run["results"][0]["ruleId"] == "DET001"
    region = run["results"][0]["locations"][0]["physicalLocation"]["region"]
    assert region["startLine"] == 1


def test_list_rules_table_covers_both_registries(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "per-file" in out and "whole-program" in out
    for code in ("DET001", "DET101", "HOT003", "CKPT001", "OBS001"):
        assert code in out
    # autofixability column
    det004_row = next(line for line in out.splitlines() if line.startswith("DET004"))
    assert "yes" in det004_row
