"""Tier-1 gate: the determinism linter must pass over the whole tree.

This is the enforcement half of the devtools subsystem — any new
``hash()`` seed, ambient RNG, wall-clock read, float cycle arithmetic, or
set-order leak fails CI here with a file:line diagnostic.
"""

from pathlib import Path

from repro.devtools.lint import lint_paths

REPO_ROOT = Path(__file__).resolve().parents[2]


def test_src_tree_is_clean():
    diagnostics = lint_paths([REPO_ROOT / "src"])
    assert diagnostics == [], "\n" + "\n".join(d.format() for d in diagnostics)


def test_tests_tree_is_clean():
    diagnostics = lint_paths([REPO_ROOT / "tests"])
    assert diagnostics == [], "\n" + "\n".join(d.format() for d in diagnostics)


def test_benchmarks_and_examples_are_clean():
    paths = [
        path
        for path in (REPO_ROOT / "benchmarks", REPO_ROOT / "examples")
        if path.exists()
    ]
    diagnostics = lint_paths(paths)
    assert diagnostics == [], "\n" + "\n".join(d.format() for d in diagnostics)
