"""Unit tests for the whole-program analysis subsystem."""

from __future__ import annotations

import time
from pathlib import Path

from repro.devtools.analysis import (
    WHOLE_PROGRAM_RULES,
    analyze_index,
    analyze_project,
)
from repro.devtools.analysis.cache import load_analysis, store_analysis
from repro.devtools.analysis.callgraph import build_call_graph
from repro.devtools.analysis.hotpath import (
    HOT_KERNELS,
    NATIVE_KERNELS,
    find_kernels,
    find_native_kernels,
)
from repro.devtools.analysis.symbols import build_index
from repro.devtools.analysis.taint import analyze_taint
from repro.devtools.lint import Diagnostic

REPO_ROOT = Path(__file__).resolve().parents[2]
PACKAGE_ROOT = REPO_ROOT / "src" / "repro"


def _index(sources: dict[str, str]):
    return build_index("proj", package="proj", sources=sources)


# ----------------------------------------------------------------------
# symbol table
# ----------------------------------------------------------------------
def test_fields_inferred_from_annotations_and_constructor_calls():
    index = _index(
        {
            "proj/a.py": (
                "class Pacer:\n"
                "    def __init__(self, rate: int):\n"
                "        self.rate = rate\n"
                "        self.blocked = []\n"
            ),
            "proj/b.py": (
                "from proj.a import Pacer\n"
                "class Controller:\n"
                "    def __init__(self):\n"
                "        self.pacer = Pacer(4)\n"
            ),
        }
    )
    assert index.field_type("proj.a.Pacer", "rate") == "int"
    assert index.field_type("proj.b.Controller", "pacer") == "proj.a.Pacer"


def test_callable_annotations_map_to_unknown():
    index = _index(
        {
            "proj/a.py": (
                "from typing import Callable\n"
                "class Core:\n"
                "    def __init__(self, fn: Callable[[int], int]):\n"
                "        self.access_fn = fn\n"
            ),
        }
    )
    # bound methods pickle fine; Callable must not look like a hazard
    assert index.field_type("proj.a.Core", "access_fn") == "?"


def test_class_attrs_open_universe_with_dynamic_getattr():
    index = _index(
        {
            "proj/a.py": (
                "class Open:\n"
                "    def __getattr__(self, name):\n"
                "        return 0\n"
                "class Closed:\n"
                "    def __init__(self):\n"
                "        self.x = 1\n"
            ),
        }
    )
    assert index.class_attrs("proj.a.Open") is None
    attrs = index.class_attrs("proj.a.Closed")
    assert attrs is not None and "x" in attrs


# ----------------------------------------------------------------------
# call graph
# ----------------------------------------------------------------------
def test_call_graph_resolves_cross_module_and_self_calls():
    index = _index(
        {
            "proj/a.py": "def helper():\n    return 1\n",
            "proj/b.py": (
                "from proj.a import helper\n"
                "class C:\n"
                "    def one(self):\n"
                "        return helper()\n"
                "    def two(self):\n"
                "        return self.one()\n"
            ),
        }
    )
    graph = build_call_graph(index)
    assert "proj.b.C.one" in graph.callers["proj.a.helper"]
    assert "proj.b.C.two" in graph.callers["proj.b.C.one"]


# ----------------------------------------------------------------------
# taint
# ----------------------------------------------------------------------
_TAINT_COMMON = (
    "class Engine:\n"
    "    def post_at(self, when, fn):\n"
    "        pass\n"
)


def test_taint_reaches_sink_through_two_hops():
    index = _index(
        {
            "proj/a.py": (
                "import time\n"
                "def raw():\n"
                "    return time.perf_counter()\n"
                "def scaled():\n"
                "    return int(raw() * 2)\n"
            ),
            "proj/b.py": (
                "from proj.a import scaled\n" + _TAINT_COMMON +
                "def arm(engine: Engine):\n"
                "    engine.post_at(scaled(), print)\n"
            ),
        }
    )
    diags = analyze_taint(index)
    assert [d.code for d in diags] == ["DET101"]
    assert "perf_counter" in diags[0].message
    assert "call path" in diags[0].message


def test_taint_killed_by_reassignment():
    index = _index(
        {
            "proj/a.py": (
                "import time\n" + _TAINT_COMMON +
                "def arm(engine: Engine):\n"
                "    when = time.time()\n"
                "    when = 100\n"
                "    engine.post_at(when, print)\n"
            ),
        }
    )
    assert analyze_taint(index) == []


def test_untainted_values_do_not_fire():
    index = _index(
        {
            "proj/a.py": (
                _TAINT_COMMON +
                "def arm(engine: Engine, base: int):\n"
                "    engine.post_at(base + 4, print)\n"
            ),
        }
    )
    assert analyze_taint(index) == []


# ----------------------------------------------------------------------
# hot kernels
# ----------------------------------------------------------------------
def test_manifest_entries_all_marked_in_tree():
    index = build_index(PACKAGE_ROOT)
    kernels = find_kernels(index)
    assert set(HOT_KERNELS) == set(kernels)


def test_hot005_fires_on_marker_without_manifest_entry():
    index = build_index(
        "repro", package="repro",
        sources={"repro/x.py": "def fast():  # repro: hot-kernel\n    return 1\n"},
    )
    from repro.devtools.analysis.hotpath import analyze_hot_kernels

    diags = analyze_hot_kernels(index)
    unmarked = [d for d in diags if "absent from the HOT_KERNELS manifest" in d.message]
    assert len(unmarked) == 1 and unmarked[0].code == "HOT005"
    # ...and every real manifest entry is reported missing from this tiny
    # tree (HOT005 for the hot inventory, HOT006 for the native mirrors)
    missing = [d for d in diags if d.code == "HOT005" and "is not marked" in d.message]
    assert len(missing) == len(HOT_KERNELS)
    native_missing = [d for d in diags if d.code == "HOT006"]
    assert len(native_missing) == len(NATIVE_KERNELS)


def test_corpus_packages_do_not_inherit_repro_manifest():
    index = _index({"proj/x.py": "def plain():\n    return 1\n"})
    from repro.devtools.analysis.hotpath import analyze_hot_kernels

    assert analyze_hot_kernels(index) == []


def test_native_manifest_entries_all_marked_in_tree():
    index = build_index(PACKAGE_ROOT)
    assert set(NATIVE_KERNELS) == set(find_native_kernels(index))


def test_hot006_fires_on_native_marker_without_manifest_entry():
    from repro.devtools.analysis.hotpath import analyze_hot_kernels

    index = _index(
        {
            "proj/y.py": (
                "def mirrored():  # repro: native-kernel\n    return 1\n"
            )
        }
    )
    diags = [d for d in analyze_hot_kernels(index) if d.code == "HOT006"]
    assert len(diags) == 1
    assert "absent from the NATIVE_KERNELS manifest" in diags[0].message


def test_hot006_fires_on_manifest_entry_without_marker():
    from repro.devtools.analysis.hotpath import analyze_hot_kernels

    index = _index(
        {
            "proj/y.py": (
                'NATIVE_KERNELS = {"proj.y.mirrored": "mirrored"}\n'
                "def mirrored():\n    return 1\n"
            )
        }
    )
    diags = [d for d in analyze_hot_kernels(index) if d.code == "HOT006"]
    assert len(diags) == 1
    assert "is not marked" in diags[0].message


# ----------------------------------------------------------------------
# disk cache
# ----------------------------------------------------------------------
def test_cache_round_trip_and_fingerprint_mismatch(tmp_path):
    diags = [
        Diagnostic(path="src/x.py", line=3, col=1, code="HOT003",
                   message="demo", end_line=4),
    ]
    store_analysis(tmp_path, "abcd1234", diags, {"package": "repro"})
    loaded = load_analysis(tmp_path, "abcd1234")
    assert loaded is not None
    cached_diags, symbols = loaded
    assert cached_diags == diags
    assert cached_diags[0].end_line == 4
    assert symbols == {"package": "repro"}
    assert load_analysis(tmp_path, "ffff0000") is None


def test_cache_rejects_corrupt_entries(tmp_path):
    (tmp_path / "abcd1234.json").write_text("{not json", encoding="utf-8")
    assert load_analysis(tmp_path, "abcd1234") is None


# ----------------------------------------------------------------------
# whole-program pass over the real tree
# ----------------------------------------------------------------------
def test_analyze_project_cold_under_budget(tmp_path):
    started = time.perf_counter()
    diags, info = analyze_project(PACKAGE_ROOT, cache_dir=tmp_path)
    elapsed = time.perf_counter() - started
    assert not info["cache_hit"]
    assert elapsed < 10.0, f"cold whole-program pass took {elapsed:.1f}s"
    # the only raw findings on the clean tree are the baselined HOT ones
    assert all(d.code.startswith("HOT") for d in diags)


def test_analyze_project_warm_hits_cache_under_budget(tmp_path):
    cold_diags, _ = analyze_project(PACKAGE_ROOT, cache_dir=tmp_path)
    started = time.perf_counter()
    warm_diags, info = analyze_project(PACKAGE_ROOT, cache_dir=tmp_path)
    elapsed = time.perf_counter() - started
    assert info["cache_hit"]
    assert elapsed < 2.0, f"warm whole-program pass took {elapsed:.1f}s"
    assert warm_diags == cold_diags


def test_clean_tree_exits_zero_through_main(monkeypatch):
    from repro.devtools.lint import main

    monkeypatch.chdir(REPO_ROOT)
    assert main(["src", "tests", "--no-cache"]) == 0


def test_every_baselined_finding_has_a_justification():
    import json

    data = json.loads(
        (REPO_ROOT / "LINT_BASELINE.json").read_text(encoding="utf-8")
    )
    assert data["entries"], "baseline unexpectedly empty"
    for entry in data["entries"]:
        assert entry["justification"].strip()
        assert "TODO" not in entry["justification"]


def test_whole_program_rules_do_not_collide_with_per_file_rules():
    from repro.devtools.lint import RULES

    assert not set(WHOLE_PROGRAM_RULES) & set(RULES)


def test_obs_pass_resolves_real_registrations():
    # the System wiring must be *visible* to the OBS pass (providers
    # resolved, zero findings) — not silently skipped
    index = build_index(PACKAGE_ROOT)
    analyze_index(index)  # no exception
    system = index.classes.get("repro.sim.system.System")
    assert system is not None
    assert index.field_type("repro.sim.system.System", "stats") != "?"
