"""Determinism-linter rule fixtures.

Each rule gets a deliberately-seeded bad fixture (must fire), a noqa'd
variant (must be suppressed), and where the rule is path-scoped, an
out-of-scope variant (must stay silent).  Fixtures are inline source
strings so linting the real ``tests/`` tree stays clean.
"""

import os
import subprocess
import sys
from pathlib import Path

from repro.devtools.lint import RULES, lint_source, main

SIM_PATH = "src/repro/sim/fake.py"        # inside repro, inside a timed layer
REPRO_PATH = "src/repro/analysis/fake.py"  # inside repro, outside timed layers
TEST_PATH = "tests/sim/fake_test.py"       # outside the repro package


def codes(source: str, path: str = SIM_PATH) -> list[str]:
    return [diag.code for diag in lint_source(source, path)]


class TestDet001BuiltinHash:
    def test_hash_fires(self):
        assert codes("seed = hash(name)\n") == ["DET001"]

    def test_id_fires(self):
        assert codes("key = id(obj)\n") == ["DET001"]

    def test_fires_outside_repro_too(self):
        assert codes("seed = hash(name)\n", TEST_PATH) == ["DET001"]

    def test_method_named_hash_ok(self):
        assert codes("digest = hasher.hash(name)\n") == []

    def test_noqa_suppresses(self):
        assert codes("seed = hash(name)  # repro: noqa[DET001]\n") == []


class TestDet002AmbientRandomness:
    def test_import_random_fires(self):
        assert codes("import random\n") == ["DET002"]

    def test_from_random_fires(self):
        assert codes("from random import choice\n") == ["DET002"]

    def test_np_seed_fires(self):
        assert codes("np.random.seed(0)\n") == ["DET002"]

    def test_unseeded_default_rng_fires(self):
        assert codes("g = np.random.default_rng()\n") == ["DET002"]

    def test_seeded_default_rng_ok(self):
        assert codes("g = np.random.default_rng(1234)\n") == []

    def test_global_helper_fires(self):
        assert codes("x = np.random.randint(0, 10)\n") == ["DET002"]

    def test_randomstate_fires(self):
        assert codes("rs = np.random.RandomState(0)\n") == ["DET002"]

    def test_constructors_ok(self):
        source = (
            "seq = np.random.SeedSequence(entropy=0)\n"
            "gen = np.random.Generator(np.random.PCG64(seq))\n"
        )
        assert codes(source) == []

    def test_scoped_to_repro_package(self):
        assert codes("import random\n", TEST_PATH) == []

    def test_noqa_suppresses(self):
        assert codes("import random  # repro: noqa[DET002]\n") == []


class TestDet003WallClock:
    def test_time_time_fires(self):
        assert codes("t = time.time()\n") == ["DET003"]

    def test_perf_counter_fires(self):
        assert codes("t = time.perf_counter()\n") == ["DET003"]

    def test_datetime_now_fires(self):
        assert codes("t = datetime.now()\n") == ["DET003"]

    def test_from_import_fires(self):
        assert codes("from time import perf_counter\n") == ["DET003"]

    def test_scoped_to_timed_layers(self):
        assert codes("t = time.time()\n", REPRO_PATH) == []
        assert codes("t = time.time()\n", TEST_PATH) == []

    def test_time_sleep_ok(self):
        assert codes("time.sleep(1)\n") == []

    def test_noqa_suppresses(self):
        assert codes("t = time.time()  # repro: noqa[DET003]\n") == []


class TestDet004FloatCycleArithmetic:
    def test_division_on_when_fires(self):
        assert codes("half = when / 2\n") == ["DET004"]

    def test_division_on_deadline_attr_fires(self):
        assert codes("x = req.virtual_deadline / stride\n") == ["DET004"]

    def test_division_on_timestamp_suffix_fires(self):
        assert codes("lat = (req.completed_at - req.created_at) / 2\n") != []

    def test_floor_division_ok(self):
        assert codes("half = when // 2\n") == []

    def test_unrelated_division_ok(self):
        assert codes("ratio = bytes_total / cycles\n") == []

    def test_rate_division_by_time_ok(self):
        assert codes("bw = stats.total_bytes() / engine.now\n") == []

    def test_call_of_timestamp_ok(self):
        assert codes("x = stats.ipc(0, engine.now) / cores\n") == []

    def test_noqa_suppresses(self):
        assert codes("half = when / 2  # repro: noqa[DET004]\n") == []


class TestDet005BareSetIteration:
    def test_for_over_set_literal_fires(self):
        assert codes("for x in {1, 2, 3}:\n    pass\n") == ["DET005"]

    def test_comprehension_over_setcomp_fires(self):
        assert codes("ys = [y for y in {x for x in xs}]\n") == ["DET005"]

    def test_sorted_set_ok(self):
        assert codes("for x in sorted({3, 1, 2}):\n    pass\n") == []

    def test_membership_test_ok(self):
        assert codes("ok = x in {1, 2, 3}\n") == []

    def test_noqa_suppresses(self):
        source = "for x in {1, 2}:  # repro: noqa[DET005]\n    pass\n"
        assert codes(source) == []


class TestSim001ScheduleDelay:
    def test_float_literal_fires(self):
        assert codes("engine.schedule(0.5, cb)\n") == ["SIM001"]

    def test_true_division_fires(self):
        assert codes("engine.schedule(total / 2, cb)\n") == ["SIM001"]

    def test_float_cast_fires(self):
        assert codes("engine.schedule_at(float(when), cb)\n") == ["SIM001"]

    def test_int_expression_ok(self):
        assert codes("engine.schedule(2 * latency + 1, cb)\n") == []

    def test_floor_division_ok(self):
        assert codes("engine.schedule(total // 2, cb)\n") == []

    def test_keyword_delay_checked(self):
        assert codes("engine.schedule(delay=0.5, callback=cb)\n") == ["SIM001"]

    def test_noqa_suppresses(self):
        assert codes("engine.schedule(0.5, cb)  # repro: noqa[SIM001]\n") == []


class TestPerf001NetworkxConfinement:
    def test_import_in_sim_module_fires(self):
        assert codes("import networkx as nx\n") == ["PERF001"]

    def test_from_import_fires(self):
        assert codes("from networkx import grid_2d_graph\n") == ["PERF001"]

    def test_submodule_import_fires(self):
        assert codes(
            "import networkx.algorithms\n", REPRO_PATH
        ) == ["PERF001"]

    def test_topology_module_is_allowed(self):
        assert codes(
            "import networkx as nx\n", "src/repro/sim/topology.py"
        ) == []

    def test_tests_are_out_of_scope(self):
        assert codes("import networkx as nx\n", TEST_PATH) == []

    def test_unrelated_import_ok(self):
        assert codes("import bisect\n") == []

    def test_noqa_suppresses(self):
        assert codes(
            "import networkx as nx  # repro: noqa[PERF001]\n"
        ) == []


class TestPerf002HeapqConfinement:
    def test_import_in_sim_module_fires(self):
        assert codes("import heapq\n") == ["PERF002"]

    def test_from_import_fires(self):
        assert codes("from heapq import heappush\n") == ["PERF002"]

    def test_import_elsewhere_in_repro_fires(self):
        assert codes("import heapq\n", REPRO_PATH) == ["PERF002"]

    def test_engine_module_is_allowed(self):
        assert codes("import heapq\n", "src/repro/sim/engine.py") == []

    def test_tests_are_out_of_scope(self):
        assert codes("import heapq\n", TEST_PATH) == []

    def test_unrelated_import_ok(self):
        assert codes("import bisect\n") == []

    def test_noqa_suppresses(self):
        assert codes("import heapq  # repro: noqa[PERF002]\n") == []


class TestPerf003SerializationConfinement:
    def test_pickle_import_in_sim_module_fires(self):
        assert codes("import pickle\n") == ["PERF003"]

    def test_from_import_fires(self):
        assert codes("from pickle import dumps\n") == ["PERF003"]

    def test_other_serializers_fire(self):
        assert codes("import marshal\n", REPRO_PATH) == ["PERF003"]
        assert codes("import shelve\n", REPRO_PATH) == ["PERF003"]
        assert codes("import dill\n", REPRO_PATH) == ["PERF003"]

    def test_checkpoint_module_is_allowed(self):
        assert codes(
            "import pickle\n", "src/repro/runner/checkpoint.py"
        ) == []

    def test_other_runner_modules_fire(self):
        assert codes(
            "import pickle\n", "src/repro/runner/pool.py"
        ) == ["PERF003"]

    def test_tests_are_out_of_scope(self):
        assert codes("import pickle\n", TEST_PATH) == []

    def test_json_is_exempt(self):
        assert codes("import json\n", REPRO_PATH) == []

    def test_noqa_suppresses(self):
        assert codes("import pickle  # repro: noqa[PERF003]\n") == []


class TestPerf004ProcessParallelismConfinement:
    def test_import_in_sim_module_fires(self):
        assert codes("import multiprocessing\n") == ["PERF004"]

    def test_from_import_fires(self):
        assert codes("from multiprocessing import Pipe\n") == ["PERF004"]

    def test_concurrent_futures_fires(self):
        assert codes("import concurrent.futures\n", REPRO_PATH) == ["PERF004"]
        assert codes(
            "from concurrent.futures import ProcessPoolExecutor\n", REPRO_PATH
        ) == ["PERF004"]
        assert codes(
            "from concurrent import futures\n", REPRO_PATH
        ) == ["PERF004"]

    def test_submodule_import_fires(self):
        assert codes(
            "from multiprocessing.connection import Connection\n", REPRO_PATH
        ) == ["PERF004"]

    def test_runner_modules_are_allowed(self):
        assert codes(
            "import multiprocessing\n", "src/repro/runner/shardpool.py"
        ) == []
        assert codes(
            "from concurrent.futures import ProcessPoolExecutor\n",
            "src/repro/runner/pool.py",
        ) == []

    def test_shard_module_is_allowed(self):
        assert codes(
            "import multiprocessing\n", "src/repro/sim/shard.py"
        ) == []

    def test_tests_are_out_of_scope(self):
        assert codes("import multiprocessing\n", TEST_PATH) == []

    def test_unrelated_concurrent_name_ok(self):
        assert codes("from concurrent import interpreters\n", REPRO_PATH) == []

    def test_noqa_suppresses(self):
        assert codes(
            "import multiprocessing  # repro: noqa[PERF004]\n"
        ) == []


class TestPerf005NativeCodeConfinement:
    def test_ctypes_import_in_sim_module_fires(self):
        assert codes("import ctypes\n") == ["PERF005"]

    def test_from_import_fires(self):
        assert codes("from ctypes import CDLL\n", REPRO_PATH) == ["PERF005"]

    def test_machinery_fires(self):
        assert codes("import importlib.machinery\n", REPRO_PATH) == ["PERF005"]
        assert codes(
            "from importlib.machinery import ExtensionFileLoader\n", REPRO_PATH
        ) == ["PERF005"]
        assert codes(
            "from importlib import machinery\n", REPRO_PATH
        ) == ["PERF005"]

    def test_plain_importlib_is_fine(self):
        assert codes("import importlib\n", REPRO_PATH) == []
        assert codes("from importlib import import_module\n", REPRO_PATH) == []

    def test_accel_modules_are_allowed(self):
        assert codes("import ctypes\n", "src/repro/accel/build.py") == []
        assert codes(
            "from importlib.machinery import ExtensionFileLoader\n",
            "src/repro/accel/build.py",
        ) == []

    def test_tests_are_out_of_scope(self):
        assert codes("import ctypes\n", TEST_PATH) == []

    def test_noqa_suppresses(self):
        assert codes("import ctypes  # repro: noqa[PERF005]\n") == []


class TestNoqaForms:
    def test_bare_noqa_suppresses_everything(self):
        assert codes("seed = hash(when / 2)  # repro: noqa\n") == []

    def test_multi_code_list(self):
        source = "seed = hash(when / 2)  # repro: noqa[DET001, DET004]\n"
        assert codes(source) == []

    def test_wrong_code_keeps_finding(self):
        assert codes("seed = hash(x)  # repro: noqa[DET005]\n") == ["DET001"]


class TestDriver:
    def test_syntax_error_reported_not_raised(self):
        diags = lint_source("def broken(:\n", SIM_PATH)
        assert [d.code for d in diags] == ["E999"]

    def test_diagnostic_format_is_clickable(self):
        diag = lint_source("seed = hash(x)\n", SIM_PATH)[0]
        assert diag.format().startswith(f"{SIM_PATH}:1:")
        assert "DET001" in diag.format()

    def test_registry_covers_documented_rules(self):
        assert set(RULES) == {
            "DET001", "DET002", "DET003", "DET004", "DET005", "SIM001",
            "PERF001", "PERF002", "PERF003", "PERF004", "PERF005",
        }

    def test_main_exit_codes(self, tmp_path: Path, capsys):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        dirty = tmp_path / "dirty.py"
        dirty.write_text("seed = hash(x)\n")
        assert main([str(clean)]) == 0
        assert main([str(dirty)]) == 1
        out = capsys.readouterr().out
        assert "DET001" in out

    def test_module_entry_point(self):
        """``python -m repro.devtools.lint`` must work (and not warn)."""
        src = Path(__file__).resolve().parents[2] / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(src) + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.devtools.lint", "--list-rules"],
            capture_output=True,
            text=True,
            env=env,
        )
        assert proc.returncode == 0
        assert "DET001" in proc.stdout
        assert "RuntimeWarning" not in proc.stderr
