"""Unit tests for the discrete-event engine."""

import os
import subprocess
import sys

import pytest
from hypothesis import given, strategies as st

from repro.sim.engine import Engine, SimulationError


class TestScheduling:
    def test_runs_callbacks_in_time_order(self):
        engine = Engine()
        order = []
        engine.schedule(30, order.append, "c")
        engine.schedule(10, order.append, "a")
        engine.schedule(20, order.append, "b")
        engine.run()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        engine = Engine()
        order = []
        for tag in range(5):
            engine.schedule(7, order.append, tag)
        engine.run()
        assert order == [0, 1, 2, 3, 4]

    def test_now_advances_to_event_time(self):
        engine = Engine()
        seen = []
        engine.schedule(42, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [42]

    def test_schedule_zero_delay_runs_at_current_time(self):
        engine = Engine()
        seen = []
        engine.schedule(5, lambda: engine.schedule(0, lambda: seen.append(engine.now)))
        engine.run()
        assert seen == [5]

    def test_negative_delay_rejected(self):
        engine = Engine()
        with pytest.raises(SimulationError):
            engine.schedule(-1, lambda: None)

    def test_schedule_at_in_past_rejected(self):
        engine = Engine()
        engine.schedule(10, lambda: None)
        engine.run()
        assert engine.now == 10
        with pytest.raises(SimulationError):
            engine.schedule_at(5, lambda: None)

    def test_callbacks_receive_args(self):
        engine = Engine()
        result = []
        engine.schedule(1, lambda a, b: result.append(a + b), 2, 3)
        engine.run()
        assert result == [5]


class TestIntegralDelays:
    """Float cycle values must fail loudly, never silently truncate."""

    def test_fractional_delay_rejected(self):
        engine = Engine()
        with pytest.raises(SimulationError, match="non-integral delay"):
            engine.schedule(0.5, lambda: None)  # repro: noqa[SIM001]

    def test_fractional_when_rejected(self):
        engine = Engine()
        with pytest.raises(SimulationError, match="non-integral when"):
            engine.schedule_at(10.25, lambda: None)  # repro: noqa[SIM001]

    def test_integral_float_accepted(self):
        engine = Engine()
        seen = []
        engine.schedule(3.0, lambda: seen.append(engine.now))  # repro: noqa[SIM001]
        engine.run()
        assert seen == [3]

    def test_numpy_integer_accepted(self):
        import numpy as np

        engine = Engine()
        seen = []
        engine.schedule(np.int64(4), lambda: seen.append(engine.now))
        engine.run()
        assert seen == [4]

    def test_fractional_never_truncates_to_reordering(self):
        """The historic failure: int(0.5) -> 0 reordered events."""
        engine = Engine()
        engine.schedule(1, lambda: None)
        with pytest.raises(SimulationError):
            engine.schedule(0.5, lambda: None)  # repro: noqa[SIM001]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        engine = Engine()
        fired = []
        event = engine.schedule(10, fired.append, "x")
        event.cancel()
        engine.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        engine = Engine()
        event = engine.schedule(10, lambda: None)
        event.cancel()
        event.cancel()
        engine.run()

    def test_cancel_one_of_many(self):
        engine = Engine()
        fired = []
        keep = engine.schedule(10, fired.append, "keep")
        drop = engine.schedule(10, fired.append, "drop")
        drop.cancel()
        engine.run()
        assert fired == ["keep"]
        assert not keep.cancelled

    def test_cancelled_event_at_queue_head_is_skipped(self):
        """Lazy deletion: the dead head is discarded, later events fire."""
        engine = Engine()
        fired = []
        head = engine.schedule(5, fired.append, "head")
        engine.schedule(10, fired.append, "tail")
        head.cancel()
        engine.run_until(20)
        assert fired == ["tail"]
        assert engine.now == 20

    def test_pending_events_counts_cancelled_until_popped(self):
        """Lazy deletion leaves dead events in the queue; pending_events
        reflects the raw queue length, not the live-event count."""
        engine = Engine()
        live = engine.schedule(5, lambda: None)
        dead = engine.schedule(10, lambda: None)
        dead.cancel()
        assert engine.pending_events == 2
        engine.run()
        assert engine.pending_events == 0
        assert dead.cancelled and not live.cancelled

    def test_run_dispatch_count_excludes_cancelled(self):
        engine = Engine()
        engine.schedule(1, lambda: None)
        engine.schedule(2, lambda: None).cancel()
        assert engine.run() == 1


class TestRunUntil:
    def test_run_until_stops_at_deadline(self):
        engine = Engine()
        fired = []
        engine.schedule(10, fired.append, "early")
        engine.schedule(100, fired.append, "late")
        engine.run_until(50)
        assert fired == ["early"]
        assert engine.now == 50
        engine.run_until(150)
        assert fired == ["early", "late"]

    def test_run_until_advances_clock_even_when_idle(self):
        engine = Engine()
        engine.run_until(123)
        assert engine.now == 123

    def test_event_exactly_at_deadline_fires(self):
        engine = Engine()
        fired = []
        engine.schedule(50, fired.append, True)
        engine.run_until(50)
        assert fired == [True]

    def test_clock_lands_on_deadline_when_queue_drains_early(self):
        """All events fire well before the deadline; the clock must still
        end exactly at the deadline so callers can chain run_until calls."""
        engine = Engine()
        fired = []
        engine.schedule(3, fired.append, "a")
        engine.schedule(7, fired.append, "b")
        engine.run_until(1_000)
        assert fired == ["a", "b"]
        assert engine.now == 1_000
        assert engine.pending_events == 0


class TestRun:
    def test_returns_dispatch_count(self):
        engine = Engine()
        for _ in range(7):
            engine.schedule(1, lambda: None)
        assert engine.run() == 7

    def test_max_events_guard(self):
        engine = Engine()

        def reschedule():
            engine.schedule(1, reschedule)

        engine.schedule(0, reschedule)
        with pytest.raises(SimulationError, match="max_events"):
            engine.run(max_events=100)


class TestRng:
    def test_same_name_same_stream(self):
        a = Engine(seed=7).rng("x").integers(0, 1 << 30, 10)
        b = Engine(seed=7).rng("x").integers(0, 1 << 30, 10)
        assert list(a) == list(b)

    def test_different_names_different_streams(self):
        engine = Engine(seed=7)
        a = engine.rng("x").integers(0, 1 << 30, 10)
        b = engine.rng("y").integers(0, 1 << 30, 10)
        assert list(a) != list(b)

    def test_different_seeds_different_streams(self):
        a = Engine(seed=1).rng("x").integers(0, 1 << 30, 10)
        b = Engine(seed=2).rng("x").integers(0, 1 << 30, 10)
        assert list(a) != list(b)

    def test_rng_cached_per_name(self):
        engine = Engine()
        assert engine.rng("x") is engine.rng("x")

    def test_stream_independent_of_creation_order(self):
        e1 = Engine(seed=3)
        e1.rng("a")
        v1 = e1.rng("b").integers(0, 1 << 30, 5)
        e2 = Engine(seed=3)
        v2 = e2.rng("b").integers(0, 1 << 30, 5)
        assert list(v1) == list(v2)


class TestRngCrossProcessStability:
    """Named streams must not depend on the process's string-hash salt.

    The seed derivation once used ``abs(hash(name))``, which varies with
    ``PYTHONHASHSEED`` — every worker process silently got different
    streams.  Spawn subprocesses with different hash seeds and require
    identical draws.
    """

    SNIPPET = (
        "from repro.sim.engine import Engine;"
        "print(list(Engine(seed=7).rng('core.0').integers(0, 1 << 30, 8)))"
    )

    def _draws(self, hash_seed: str) -> str:
        repo_src = os.path.join(
            os.path.dirname(os.path.dirname(os.path.dirname(__file__))), "src"
        )
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = hash_seed
        env["PYTHONPATH"] = repo_src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c", self.SNIPPET],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        return proc.stdout.strip()

    def test_streams_identical_across_hash_seeds(self):
        draws = {self._draws(seed) for seed in ("0", "1", "424242")}
        assert len(draws) == 1, f"streams diverged across processes: {draws}"

    def test_subprocess_matches_in_process(self):
        expected = list(Engine(seed=7).rng("core.0").integers(0, 1 << 30, 8))
        assert self._draws("0") == str(expected)


class TestShardSeedCrossProcessStability:
    """Per-shard seeds ride the same sha256 scheme as named streams.

    A sharded run gives each target shard's engine a seed derived by
    :func:`repro.sim.shard.shard_seed`; like :meth:`Engine.rng` it must
    never touch builtin ``hash``, so worker processes spawned with any
    ``PYTHONHASHSEED`` derive identical seeds — and identical streams.
    """

    SNIPPET = (
        "from repro.sim.engine import Engine;"
        "from repro.sim.shard import shard_seed;"
        "print(list(Engine(seed=shard_seed(7, 2)).rng('core.0')"
        ".integers(0, 1 << 30, 8)))"
    )

    def _draws(self, hash_seed: str) -> str:
        repo_src = os.path.join(
            os.path.dirname(os.path.dirname(os.path.dirname(__file__))), "src"
        )
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = hash_seed
        env["PYTHONPATH"] = repo_src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c", self.SNIPPET],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        return proc.stdout.strip()

    def test_shard_streams_identical_across_hash_seeds(self):
        draws = {self._draws(seed) for seed in ("0", "1", "424242")}
        assert len(draws) == 1, f"shard streams diverged: {draws}"

    def test_subprocess_matches_in_process(self):
        from repro.sim.shard import shard_seed

        expected = list(
            Engine(seed=shard_seed(7, 2)).rng("core.0").integers(0, 1 << 30, 8)
        )
        assert self._draws("0") == str(expected)

    def test_shard_seed_diverges_from_root_stream(self):
        from repro.sim.shard import shard_seed

        root = Engine(seed=7).rng("core.0").integers(0, 1 << 30, 8)
        shard = Engine(seed=shard_seed(7, 1)).rng("core.0").integers(0, 1 << 30, 8)
        assert list(root) != list(shard)


@given(delays=st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=60))
def test_property_events_dispatch_in_nondecreasing_time(delays):
    engine = Engine()
    seen = []
    for delay in delays:
        engine.schedule(delay, lambda: seen.append(engine.now))
    engine.run()
    assert seen == sorted(seen)
    assert len(seen) == len(delays)


class TestLiveEventCounter:
    def test_live_excludes_cancelled_pending_includes_them(self):
        engine = Engine()
        keep = engine.schedule(5, lambda: None)
        drop = engine.schedule(10, lambda: None)
        assert engine.live_events == 2
        drop.cancel()
        assert engine.live_events == 1
        assert engine.pending_events == 2  # lazy deletion: still in heap
        engine.run()
        assert engine.live_events == 0
        assert not keep.cancelled

    def test_cancel_after_dispatch_does_not_double_count(self):
        engine = Engine()
        event = engine.schedule(1, lambda: None)
        engine.run()
        assert engine.live_events == 0
        event.cancel()  # firing already settled the counter
        assert engine.live_events == 0

    def test_posts_count_as_live_until_dispatched(self):
        engine = Engine()
        engine.post(3, lambda: None)
        engine.post_at(7, lambda: None)
        assert engine.live_events == 2
        engine.run_until(5)
        assert engine.live_events == 1
        engine.run_until(10)
        assert engine.live_events == 0


class TestPost:
    """Fire-and-forget entries must order exactly like Event entries."""

    def test_post_interleaves_with_schedule_by_insertion_order(self):
        engine = Engine()
        order = []
        engine.schedule(5, order.append, "event-a")
        engine.post(5, order.append, "post-b")
        engine.schedule(5, order.append, "event-c")
        engine.post_at(5, order.append, "post-d")
        engine.run()
        assert order == ["event-a", "post-b", "event-c", "post-d"]

    def test_post_counts_in_dispatch_totals(self):
        engine = Engine()
        engine.post(1, lambda: None)
        engine.schedule(2, lambda: None)
        assert engine.run() == 2
        assert engine.dispatched == 2

    def test_post_rejects_negative_delay_and_past_timestamps(self):
        engine = Engine()
        engine.run_until(10)
        with pytest.raises(SimulationError):
            engine.post(-1, lambda: None)
        with pytest.raises(SimulationError):
            engine.post_at(9, lambda: None)

    def test_post_rejects_fractional_delay(self):
        engine = Engine()
        with pytest.raises(SimulationError):
            engine.post(0.5, lambda: None)  # repro: noqa[SIM001]

    def test_post_survives_run_max_events_repush(self):
        """A bare post entry hitting the max_events guard is re-queued."""
        engine = Engine()
        fired = []
        engine.post(1, fired.append, "first")
        engine.post(2, fired.append, "second")
        with pytest.raises(SimulationError):
            engine.run(max_events=1)
        assert fired == ["first"]
        engine.run()
        assert fired == ["first", "second"]
