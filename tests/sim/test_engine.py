"""Unit tests for the discrete-event engine."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.engine import Engine, SimulationError


class TestScheduling:
    def test_runs_callbacks_in_time_order(self):
        engine = Engine()
        order = []
        engine.schedule(30, order.append, "c")
        engine.schedule(10, order.append, "a")
        engine.schedule(20, order.append, "b")
        engine.run()
        assert order == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        engine = Engine()
        order = []
        for tag in range(5):
            engine.schedule(7, order.append, tag)
        engine.run()
        assert order == [0, 1, 2, 3, 4]

    def test_now_advances_to_event_time(self):
        engine = Engine()
        seen = []
        engine.schedule(42, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [42]

    def test_schedule_zero_delay_runs_at_current_time(self):
        engine = Engine()
        seen = []
        engine.schedule(5, lambda: engine.schedule(0, lambda: seen.append(engine.now)))
        engine.run()
        assert seen == [5]

    def test_negative_delay_rejected(self):
        engine = Engine()
        with pytest.raises(SimulationError):
            engine.schedule(-1, lambda: None)

    def test_schedule_at_in_past_rejected(self):
        engine = Engine()
        engine.schedule(10, lambda: None)
        engine.run()
        assert engine.now == 10
        with pytest.raises(SimulationError):
            engine.schedule_at(5, lambda: None)

    def test_callbacks_receive_args(self):
        engine = Engine()
        result = []
        engine.schedule(1, lambda a, b: result.append(a + b), 2, 3)
        engine.run()
        assert result == [5]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        engine = Engine()
        fired = []
        event = engine.schedule(10, fired.append, "x")
        event.cancel()
        engine.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        engine = Engine()
        event = engine.schedule(10, lambda: None)
        event.cancel()
        event.cancel()
        engine.run()

    def test_cancel_one_of_many(self):
        engine = Engine()
        fired = []
        keep = engine.schedule(10, fired.append, "keep")
        drop = engine.schedule(10, fired.append, "drop")
        drop.cancel()
        engine.run()
        assert fired == ["keep"]
        assert not keep.cancelled


class TestRunUntil:
    def test_run_until_stops_at_deadline(self):
        engine = Engine()
        fired = []
        engine.schedule(10, fired.append, "early")
        engine.schedule(100, fired.append, "late")
        engine.run_until(50)
        assert fired == ["early"]
        assert engine.now == 50
        engine.run_until(150)
        assert fired == ["early", "late"]

    def test_run_until_advances_clock_even_when_idle(self):
        engine = Engine()
        engine.run_until(123)
        assert engine.now == 123

    def test_event_exactly_at_deadline_fires(self):
        engine = Engine()
        fired = []
        engine.schedule(50, fired.append, True)
        engine.run_until(50)
        assert fired == [True]


class TestRun:
    def test_returns_dispatch_count(self):
        engine = Engine()
        for _ in range(7):
            engine.schedule(1, lambda: None)
        assert engine.run() == 7

    def test_max_events_guard(self):
        engine = Engine()

        def reschedule():
            engine.schedule(1, reschedule)

        engine.schedule(0, reschedule)
        with pytest.raises(SimulationError, match="max_events"):
            engine.run(max_events=100)


class TestRng:
    def test_same_name_same_stream(self):
        a = Engine(seed=7).rng("x").integers(0, 1 << 30, 10)
        b = Engine(seed=7).rng("x").integers(0, 1 << 30, 10)
        assert list(a) == list(b)

    def test_different_names_different_streams(self):
        engine = Engine(seed=7)
        a = engine.rng("x").integers(0, 1 << 30, 10)
        b = engine.rng("y").integers(0, 1 << 30, 10)
        assert list(a) != list(b)

    def test_different_seeds_different_streams(self):
        a = Engine(seed=1).rng("x").integers(0, 1 << 30, 10)
        b = Engine(seed=2).rng("x").integers(0, 1 << 30, 10)
        assert list(a) != list(b)

    def test_rng_cached_per_name(self):
        engine = Engine()
        assert engine.rng("x") is engine.rng("x")

    def test_stream_independent_of_creation_order(self):
        e1 = Engine(seed=3)
        e1.rng("a")
        v1 = e1.rng("b").integers(0, 1 << 30, 5)
        e2 = Engine(seed=3)
        v2 = e2.rng("b").integers(0, 1 << 30, 5)
        assert list(v1) == list(v2)


@given(delays=st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=60))
def test_property_events_dispatch_in_nondecreasing_time(delays):
    engine = Engine()
    seen = []
    for delay in delays:
        engine.schedule(delay, lambda: seen.append(engine.now))
    engine.run()
    assert seen == sorted(seen)
    assert len(seen) == len(delays)
