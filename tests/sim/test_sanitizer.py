"""Unit tests for the runtime invariant sanitizer."""

import pytest

from repro.sim.engine import Engine, SimulationError
from repro.sim.records import AccessType, MemoryRequest
from repro.sim.sanitizer import SimSanitizer


def make_request(**overrides) -> MemoryRequest:
    req = MemoryRequest(addr=0x1000, access=AccessType.READ, qos_id=0, core_id=0)
    for name, value in overrides.items():
        setattr(req, name, value)
    return req


class TestEventClock:
    def test_monotone_dispatch_ok(self):
        san = SimSanitizer()
        san.on_event(5, 0)
        san.on_event(5, 5)
        san.on_event(9, 5)

    def test_backwards_dispatch_caught(self):
        san = SimSanitizer()
        san.on_event(10, 0)
        with pytest.raises(SimulationError, match="clock moved backwards"):
            san.on_event(7, 10)

    def test_engine_runs_clean_with_sanitizer(self):
        engine = Engine()
        engine.sanitizer = SimSanitizer()
        fired = []
        engine.schedule(3, fired.append, "a")
        engine.schedule(1, fired.append, "b")
        engine.run()
        assert fired == ["b", "a"]
        assert engine.sanitizer.checks > 0


class TestLifecycle:
    def test_ordered_lifecycle_ok(self):
        req = make_request(
            created_at=0, released_at=2, arrived_mc_at=10,
            dispatched_at=12, issued_at=12, completed_at=40,
        )
        assert req.lifecycle_violation() is None

    def test_skipped_stages_ok(self):
        # an L3 hit never reaches a controller
        req = make_request(created_at=0, released_at=2, completed_at=30)
        assert req.lifecycle_violation() is None

    def test_corrupted_order_caught(self):
        san = SimSanitizer()
        req = make_request(created_at=10, released_at=5)
        with pytest.raises(SimulationError, match="lifecycle out of order"):
            san.on_inject(req)

    def test_stage_without_creation_caught(self):
        san = SimSanitizer()
        req = make_request(issued_at=4)
        with pytest.raises(SimulationError, match="never created"):
            san.on_inject(req)

    def test_error_carries_hop_trace(self):
        san = SimSanitizer()
        req = make_request(created_at=10, released_at=12)
        san.on_inject(req)
        req.completed_at = 11  # corrupt after injection
        with pytest.raises(SimulationError) as exc_info:
            san.on_complete(req)
        message = str(exc_info.value)
        assert f"req {req.req_id}" in message
        assert "created=10" in message
        assert "completed=11" in message


class TestConservation:
    def test_inject_complete_balance(self):
        san = SimSanitizer()
        first = make_request(created_at=0)
        second = make_request(created_at=0)
        san.on_inject(first)
        san.on_inject(second)
        first.completed_at = 9
        san.on_complete(first)
        assert san.injected == 2
        assert san.completed == 1
        assert san.in_flight == 1
        san.on_run_end()  # one still legitimately in flight

    def test_double_injection_caught(self):
        san = SimSanitizer()
        req = make_request(created_at=0)
        san.on_inject(req)
        with pytest.raises(SimulationError, match="injected twice"):
            san.on_inject(req)

    def test_unknown_completion_caught(self):
        san = SimSanitizer()
        req = make_request(created_at=0, completed_at=5)
        with pytest.raises(SimulationError, match="never injected"):
            san.on_complete(req)

    def test_double_completion_caught(self):
        san = SimSanitizer()
        req = make_request(created_at=0)
        san.on_inject(req)
        req.completed_at = 5
        san.on_complete(req)
        with pytest.raises(SimulationError):
            san.on_complete(req)

    def test_counter_drift_caught(self):
        san = SimSanitizer()
        req = make_request(created_at=0)
        san.on_inject(req)
        san.injected += 1  # simulate a lost request
        with pytest.raises(SimulationError, match="conservation"):
            san.on_run_end()


class TestDeadlineMonotonicity:
    def accepted(self, san, deadline, qos_id=0, mc_id=0):
        req = make_request(
            created_at=0, released_at=0, arrived_mc_at=1,
            virtual_deadline=deadline, mc_id=mc_id,
        )
        req.qos_id = qos_id
        san.on_accept(req)

    def test_nondecreasing_ok(self):
        san = SimSanitizer()
        self.accepted(san, 100)
        self.accepted(san, 100)
        self.accepted(san, 250)

    def test_regression_caught(self):
        san = SimSanitizer()
        self.accepted(san, 100)
        with pytest.raises(SimulationError, match="deadline regressed"):
            self.accepted(san, 60)

    def test_classes_tracked_independently(self):
        san = SimSanitizer()
        self.accepted(san, 100, qos_id=0)
        self.accepted(san, 30, qos_id=1)  # other class may lag

    def test_controllers_tracked_independently(self):
        san = SimSanitizer()
        self.accepted(san, 100, mc_id=0)
        self.accepted(san, 30, mc_id=1)  # each arbiter has its own clocks

    def test_writes_not_checked(self):
        san = SimSanitizer()
        self.accepted(san, 100)
        wb = make_request(
            created_at=0, released_at=0, arrived_mc_at=1, virtual_deadline=10
        )
        wb.access = AccessType.WRITEBACK
        san.on_accept(wb)  # no EDF invariant on the write path


class TestHopTrace:
    def test_trace_lists_reached_stages_only(self):
        req = make_request(created_at=3, released_at=7)
        trace = req.hop_trace()
        assert "created=3" in trace
        assert "released=7" in trace
        assert "arrived_mc" not in trace

    def test_trace_of_fresh_request(self):
        assert "no timestamps" in make_request().hop_trace()
