"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_info_command(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "PABST" in out
        assert "libquantum" in out

    def test_unknown_experiment_fails_cleanly(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_registry_covers_every_figure(self):
        assert set(EXPERIMENTS) == {
            "fig01", "fig05", "fig06", "fig07", "fig08",
            "fig09", "fig10", "fig11", "fig12",
        }


class TestRun:
    def test_run_quick_experiment(self, capsys):
        assert main(["run", "fig05", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "proportional allocation" in out
        assert "steady hi share" in out

    def test_seed_accepted(self, capsys):
        assert main(["run", "fig05", "--quick", "--seed", "3"]) == 0
