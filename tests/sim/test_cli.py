"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENTS:
            assert name in out

    def test_info_command(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "PABST" in out
        assert "libquantum" in out

    def test_unknown_experiment_fails_cleanly(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_registry_covers_every_figure(self):
        assert set(EXPERIMENTS) == {
            "fig01", "fig05", "fig06", "fig07", "fig08",
            "fig09", "fig10", "fig11", "fig12", "soc256",
            "arena",
        }


class TestRun:
    def test_run_quick_experiment(self, capsys):
        assert main(["run", "fig05", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "proportional allocation" in out
        assert "steady hi share" in out

    def test_seed_accepted(self, capsys):
        assert main(["run", "fig05", "--quick", "--seed", "3"]) == 0


class TestTrace:
    def test_trace_emits_valid_chrome_trace(self, capsys, tmp_path):
        import json

        from repro.obs.trace import validate_chrome_trace

        out_path = tmp_path / "trace.json"
        metrics_path = tmp_path / "epochs.jsonl"
        assert main([
            "trace", "fig05", "--quick",
            "--output", str(out_path),
            "--metrics", str(metrics_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "steady hi share" in out  # report still prints
        assert "transitions recorded" in out
        document = json.loads(out_path.read_text())
        assert validate_chrome_trace(document) > 0
        assert metrics_path.exists()
        first = json.loads(metrics_path.read_text().splitlines()[0])
        assert "bandwidth_by_class" in first

    def test_trace_report_matches_untraced_run(self, capsys, tmp_path):
        # attaching the tracer must not change simulation results
        assert main(["run", "fig05", "--quick"]) == 0
        untraced = capsys.readouterr().out
        assert main([
            "trace", "fig05", "--quick",
            "--output", str(tmp_path / "t.json"),
        ]) == 0
        traced_out = capsys.readouterr().out
        report = untraced.split("== fig05")[1].splitlines()[1:]
        for line in report:
            if line.startswith("["):  # timing lines differ
                continue
            assert line in traced_out

    def test_trace_unknown_experiment_fails_cleanly(self, capsys):
        assert main(["trace", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_trace_buffer_cap_respected(self, capsys, tmp_path):
        out_path = tmp_path / "trace.json"
        assert main([
            "trace", "fig05", "--quick",
            "--buffer", "100", "--output", str(out_path),
        ]) == 0
        out = capsys.readouterr().out
        assert "dropped by the ring" in out
