"""Sharded simulation: partition, windows, canonical order, determinism.

The byte-identity tests at the bottom are the sharding subsystem's
contract: a sharded run of a figure config must reproduce the committed
single-process golden report byte-for-byte at any shard count, on both
the inline lockstep backend and the process backend (DESIGN.md §11).
"""

from dataclasses import replace
from random import Random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pabst import PabstMechanism
from repro.qos.classes import QoSRegistry
from repro.runner.checkpoint import clone_system
from repro.runner.shardpool import run_sharded
from repro.sim.config import SystemConfig
from repro.sim.engine import SimulationError
from repro.sim.shard import (
    ShardPlan,
    ShardRunner,
    shard_seed,
    sort_boundary_batch,
    window_schedule,
)
from repro.sim.system import System
from repro.workloads.stream import StreamWorkload


def make_system(num_mcs=2, cores=2, seed=0, sanitize=False):
    config = replace(SystemConfig.small_test(), num_mcs=num_mcs)
    registry = QoSRegistry()
    registry.define_class(0, "hi", weight=3)
    registry.define_class(1, "lo", weight=1)
    workloads = {}
    for core in range(cores):
        registry.assign_core(core, 0 if core < cores // 2 else 1)
        workloads[core] = StreamWorkload()
    return System(
        config,
        registry,
        workloads,
        mechanism=PabstMechanism(),
        seed=seed,
        sanitize=sanitize,
    )


class TestShardSeed:
    def test_deterministic(self):
        assert shard_seed(7, 1) == shard_seed(7, 1)

    def test_distinct_per_shard_and_root(self):
        seeds = {shard_seed(root, shard) for root in (0, 1) for shard in range(4)}
        assert len(seeds) == 8

    def test_pinned_value(self):
        """sha256 derivation is part of the determinism contract: a
        change here silently re-seeds every sharded run."""
        import hashlib

        digest = hashlib.sha256(b"7.shard.2").digest()
        assert shard_seed(7, 2) == int.from_bytes(digest[:8], "big")


class TestWindowSchedule:
    def test_partitions_the_run(self):
        barriers = list(window_schedule(7, 20, 2))
        assert barriers[-1] == (40, True)
        ends = [end for end, _ in barriers]
        assert ends == sorted(set(ends))

    def test_epoch_boundaries_are_barriers(self):
        barriers = list(window_schedule(7, 20, 3))
        epoch_ends = [end for end, is_epoch in barriers if is_epoch]
        assert epoch_ends == [20, 40, 60]

    def test_windows_never_exceed_lookahead(self):
        previous = 0
        for end, _ in window_schedule(7, 20, 3):
            assert 0 < end - previous <= 7
            previous = end

    def test_lookahead_wider_than_epoch(self):
        assert list(window_schedule(50, 20, 2)) == [(20, True), (40, True)]

    def test_rejects_zero_lookahead(self):
        with pytest.raises(SimulationError):
            list(window_schedule(0, 20, 1))


class TestShardPlan:
    def test_every_mc_owned_by_exactly_one_target(self):
        for num_shards in (2, 3, 4, 5):
            for num_mcs in (1, 2, 4, 32):
                plan = ShardPlan(
                    num_shards=num_shards,
                    num_mcs=num_mcs,
                    lookahead=4,
                    epoch_cycles=500,
                )
                owned = [
                    mc
                    for shard in range(num_shards)
                    for mc in plan.mcs_of_shard(shard)
                ]
                assert sorted(owned) == list(range(num_mcs))
                assert plan.mcs_of_shard(0) == ()

    def test_surplus_target_shards_own_nothing(self):
        plan = ShardPlan(num_shards=4, num_mcs=2, lookahead=4, epoch_cycles=500)
        assert [plan.mcs_of_shard(s) for s in range(4)] == [(), (0,), (1,), ()]

    def test_rejects_single_shard(self):
        with pytest.raises(SimulationError):
            ShardPlan(num_shards=1, num_mcs=2, lookahead=4, epoch_cycles=500)

    def test_from_system_uses_min_link_latency(self):
        system = make_system()
        plan = ShardPlan.from_system(system, 2)
        assert plan.lookahead == system.topology.min_tile_to_mc_latency()
        assert plan.lookahead >= 1


@given(
    batch=st.lists(
        st.tuples(
            st.integers(0, 50),  # when
            st.integers(0, 3),  # src_shard
            st.integers(0, 1000),  # seq
        ),
        unique=True,
        max_size=40,
    ),
    data=st.data(),
)
def test_property_boundary_order_is_arrival_invariant(batch, data):
    shuffled = data.draw(st.permutations(batch))
    assert sort_boundary_batch(shuffled) == sort_boundary_batch(batch)
    assert sort_boundary_batch(batch) == sorted(batch)


# ----------------------------------------------------------------------
# shuffled-arrival determinism against the single-engine reference
# ----------------------------------------------------------------------
EPOCHS = 2


def _digest(system):
    """Salient end-of-run state, equal iff two runs took one schedule."""
    stats = system.stats
    per_class = {
        qos_id: (
            cs.bytes_read,
            cs.bytes_written,
            cs.reads_completed,
            cs.writes_completed,
            cs.read_latency_sum,
            cs.read_latency_max,
            cs.stage_noc_sum,
            cs.stage_queue_sum,
            cs.stage_service_sum,
        )
        for qos_id, cs in sorted(stats.classes.items())
    }
    return (
        system.engine.now,
        stats.requests_enqueued,
        stats.requests_rejected,
        stats.bus_busy_cycles,
        stats.mc_active_cycles,
        per_class,
    )


def _run_shuffled(system, shards, rng: Random):
    """The inline lockstep loop with adversarial message transport:
    every exchange splits each boundary batch into random fragments and
    delivers all fragments in a random global order."""
    plan = ShardPlan.from_system(system, shards)
    barriers = list(
        window_schedule(plan.lookahead, plan.epoch_cycles, EPOCHS)
    )
    runners = [ShardRunner(system, plan, 0)]
    runners.extend(
        ShardRunner(clone_system(system), plan, shard_id)
        for shard_id in range(1, shards)
    )
    for runner in runners:
        runner.start()

    def exchange():
        moves = []
        for runner in runners:
            for dst in range(shards):
                if dst == runner.shard_id:
                    continue
                batch = runner.take_outbox(dst)
                while batch:
                    cut = rng.randint(1, len(batch))
                    moves.append((runner.shard_id, dst, batch[:cut]))
                    batch = batch[cut:]
        rng.shuffle(moves)
        for src, dst, fragment in moves:
            runners[dst].receive(src, fragment)

    source = runners[0]
    for end, is_epoch in barriers:
        for runner in runners:
            runner.inject_due(end)
        for runner in runners:
            runner.run_window(end)
        deltas = None
        if is_epoch:
            deltas = [
                (runner.shard_id, runner.epoch_delta())
                for runner in runners[1:]
            ]
        exchange()
        if is_epoch:
            source.apply_epoch(deltas)
    end = barriers[-1][0]
    for runner in runners:
        runner.inject_due(end + 1)
    for runner in runners:
        runner.run_tail(end)
    exchange()
    source.finalize_source(
        [(runner.shard_id, runner.finalize_target()) for runner in runners[1:]]
    )
    return system


@settings(max_examples=8, deadline=None)
@given(rng=st.randoms(use_true_random=False), shards=st.sampled_from([2, 3]))
def test_property_shuffled_arrival_matches_single_engine(rng, shards):
    reference = make_system()
    reference.run_epochs(EPOCHS)
    reference.finalize()
    sharded = _run_shuffled(make_system(), shards, rng)
    assert _digest(sharded) == _digest(reference)


# ----------------------------------------------------------------------
# backend equivalence and guards
# ----------------------------------------------------------------------
class TestRunSharded:
    def test_inline_matches_single_engine_with_sanitizer(self):
        reference = make_system(sanitize=True)
        reference.run_epochs(EPOCHS)
        reference.finalize()
        sharded = run_sharded(
            make_system(sanitize=True), EPOCHS, 2, backend="inline"
        )
        assert _digest(sharded) == _digest(reference)

    def test_more_shards_than_mcs_still_exact(self):
        reference = make_system()
        reference.run_epochs(EPOCHS)
        reference.finalize()
        sharded = run_sharded(make_system(), EPOCHS, 4, backend="inline")
        assert _digest(sharded) == _digest(reference)

    def test_rejects_started_system(self):
        system = make_system()
        system.run_epochs(1)
        with pytest.raises(SimulationError):
            run_sharded(system, 1, 2, backend="inline")

    def test_rejects_unknown_backend(self):
        with pytest.raises(SimulationError):
            run_sharded(make_system(), 1, 2, backend="threads")


# ----------------------------------------------------------------------
# byte-identity against the committed golden reports
# ----------------------------------------------------------------------
def _golden(filename):
    from pathlib import Path

    path = (
        Path(__file__).parent.parent / "experiments" / "golden" / filename
    )
    return path.read_text(encoding="utf-8")


GOLDEN_CASES = [
    ("fig05_proportional", "fig05_quick_seed0.txt", 2, "inline"),
    ("fig05_proportional", "fig05_quick_seed0.txt", 4, "inline"),
    ("fig05_proportional", "fig05_quick_seed0.txt", 2, "process"),
    ("fig06_work_conserving", "fig06_quick_seed0.txt", 2, "inline"),
    ("fig07_source_and_target", "fig07_quick_seed0.txt", 2, "inline"),
]


@pytest.mark.parametrize(
    "module_name,filename,shards,backend",
    GOLDEN_CASES,
    ids=[f"{m}-x{s}-{b}" for m, _, s, b in GOLDEN_CASES],
)
def test_sharded_report_matches_golden_bytes(
    module_name, filename, shards, backend
):
    import importlib

    from repro.experiments.common import sharded

    module = importlib.import_module(f"repro.experiments.{module_name}")
    with sharded(shards, backend=backend):
        actual = module.run(quick=True, seed=0).report() + "\n"
    assert actual == _golden(filename), (
        f"{module_name} at --shards {shards} ({backend}) diverged from the "
        "single-process golden report: the shard runner broke determinism"
    )
