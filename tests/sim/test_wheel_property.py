"""Property test: the timing wheel must order-match a reference heap.

The engine's contract is exact ``(when, seq)`` dispatch order — the
timing wheel is an implementation detail that must be observationally
identical to the straightforward binary-heap scheduler it replaced.
This test drives random interleavings of ``schedule``/``post``/
``post_at``/``post_chain_at``/``cancel``/``run_until`` through the real
:class:`~repro.sim.engine.Engine` and through a ~40-line heapq reference,
and requires identical dispatch logs, clocks, and live-event counts
(including the cancel-after-dispatch edge, which must not decrement the
counter twice).

Delays deliberately straddle the wheel horizon (4096 cycles) so entries
take both the direct-bucket path and the overflow-heap path.
"""

import heapq

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import _WHEEL_SIZE, Engine


class _RefEvent:
    """Cancellable handle mirroring ``repro.sim.engine.Event``."""

    __slots__ = ("engine", "cancelled", "fired")

    def __init__(self, engine: "ReferenceEngine") -> None:
        self.engine = engine
        self.cancelled = False
        self.fired = False

    def cancel(self) -> None:
        if not self.cancelled and not self.fired:
            self.cancelled = True
            self.engine._live -= 1


class ReferenceEngine:
    """Minimal (when, seq) binary-heap scheduler with lazy cancellation."""

    def __init__(self) -> None:
        self._heap: list = []
        self._seq = 0
        self._live = 0
        self.now = 0

    @property
    def live_events(self) -> int:
        return self._live

    def _push(self, when: int, item: tuple) -> None:
        heapq.heappush(self._heap, (when, self._seq, item))
        self._seq += 1
        self._live += 1

    def schedule(self, delay: int, callback, *args) -> _RefEvent:
        event = _RefEvent(self)
        self._push(self.now + delay, (event, callback, args))
        return event

    def post(self, delay: int, callback, *args) -> None:
        self._push(self.now + delay, (None, callback, args))

    def post_at(self, when: int, callback, *args) -> None:
        self._push(when, (None, callback, args))

    def post_chain_at(
        self, when, callback, args, link_delay, link_callback, link_args
    ) -> None:
        self._push(
            when, ("chain", callback, args, link_delay, link_callback, link_args)
        )

    def run_until(self, deadline: int) -> None:
        heap = self._heap
        while heap and heap[0][0] <= deadline:
            when, _, item = heapq.heappop(heap)
            self.now = when
            if item[0] == "chain":
                _, callback, args, link_delay, link_callback, link_args = item
                self._live -= 1
                callback(*args)
                # continuation enqueued right after the first hop returns,
                # exactly like a post() made from inside the callback
                self._push(when + link_delay, (None, link_callback, link_args))
            else:
                event, callback, args = item
                if event is not None:
                    if event.cancelled:
                        continue
                    event.fired = True
                self._live -= 1
                callback(*args)
        if self.now < deadline:
            self.now = deadline


class Driver:
    """Applies one op sequence to either engine and records dispatches."""

    def __init__(self, host) -> None:
        self.host = host
        self.log: list[tuple[int, int]] = []
        self.events: list = []

    def _fire(self, tag: int, spawn_delay: int) -> None:
        self.log.append((tag, self.host.now))
        if spawn_delay:
            # nested scheduling from inside a callback: same-cycle and
            # later-cycle follow-ups must order identically on both hosts
            self.host.post(spawn_delay, self._fire, tag + 100_000, 0)

    def apply(self, op: tuple) -> None:
        kind = op[0]
        if kind == "schedule":
            _, delay, tag, spawn = op
            self.events.append(self.host.schedule(delay, self._fire, tag, spawn))
        elif kind == "post":
            _, delay, tag, spawn = op
            self.host.post(delay, self._fire, tag, spawn)
        elif kind == "post_at":
            _, offset, tag, spawn = op
            self.host.post_at(self.host.now + offset, self._fire, tag, spawn)
        elif kind == "chain":
            _, offset, link_delay, tag = op
            self.host.post_chain_at(
                self.host.now + offset,
                self._fire,
                (tag, 0),
                link_delay,
                self._fire,
                (tag + 200_000, 0),
            )
        elif kind == "cancel":
            if self.events:
                # may target an already-fired or already-cancelled event:
                # both must be no-ops on the live counter
                self.events[op[1] % len(self.events)].cancel()
        elif kind == "run":
            self.host.run_until(self.host.now + op[1])
        else:  # pragma: no cover - defense against strategy drift
            raise AssertionError(f"unknown op {op!r}")


# Delays/offsets up to ~2.5 wheel turns so both the direct-bucket insert
# and the overflow heap (plus refills) are exercised.
_SPAN = int(_WHEEL_SIZE * 2.5)
_TAGS = st.integers(min_value=0, max_value=999)
_SPAWN = st.sampled_from((0, 0, 0, 1, 3))
_OPS = st.one_of(
    st.tuples(
        st.just("schedule"),
        st.integers(min_value=0, max_value=_SPAN),
        _TAGS,
        _SPAWN,
    ),
    st.tuples(
        st.just("post"),
        st.integers(min_value=0, max_value=_SPAN),
        _TAGS,
        _SPAWN,
    ),
    st.tuples(
        st.just("post_at"),
        st.integers(min_value=0, max_value=_SPAN),
        _TAGS,
        _SPAWN,
    ),
    st.tuples(
        st.just("chain"),
        st.integers(min_value=0, max_value=_SPAN),
        st.integers(min_value=1, max_value=64),
        _TAGS,
    ),
    st.tuples(st.just("cancel"), st.integers(min_value=0, max_value=255)),
    st.tuples(st.just("run"), st.integers(min_value=0, max_value=_SPAN)),
)


@settings(max_examples=75, deadline=None)
@given(ops=st.lists(_OPS, min_size=1, max_size=60))
def test_wheel_matches_reference_heap(ops):
    wheel = Driver(Engine())
    reference = Driver(ReferenceEngine())
    for op in ops:
        wheel.apply(op)
        reference.apply(op)
        assert wheel.host.live_events == reference.host.live_events
    # drain everything still queued so every insertion is order-checked
    final = max(wheel.host.now + 4 * _SPAN, 8 * _SPAN)
    wheel.host.run_until(final)
    reference.host.run_until(final)
    assert wheel.log == reference.log
    assert wheel.host.now == reference.host.now
    assert wheel.host.live_events == reference.host.live_events


def test_cancel_after_dispatch_is_settled_once():
    """Firing settles the counter; a late cancel must not touch it."""
    wheel = Engine()
    reference = ReferenceEngine()
    fired = []
    wheel_event = wheel.schedule(3, fired.append, "wheel")
    ref_event = reference.schedule(3, fired.append, "ref")
    wheel.run_until(10)
    reference.run_until(10)
    assert fired == ["wheel", "ref"]
    assert wheel.live_events == reference.live_events == 0
    wheel_event.cancel()
    ref_event.cancel()
    assert wheel.live_events == reference.live_events == 0
