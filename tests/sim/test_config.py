"""Unit tests for system configuration (Table III encodings)."""

import pytest

from repro.dram.timing import DramTiming, PagePolicy
from repro.sim.config import SystemConfig


class TestValidation:
    def test_defaults_valid(self):
        SystemConfig()

    def test_cores_must_fit_mesh(self):
        with pytest.raises(ValueError):
            SystemConfig(cores=9, mesh_cols=2, mesh_rows=2)

    def test_line_bytes_power_of_two(self):
        with pytest.raises(ValueError):
            SystemConfig(line_bytes=48)

    def test_page_policy_checked(self):
        with pytest.raises(ValueError):
            SystemConfig(page_policy="half-open")
        SystemConfig(page_policy=PagePolicy.OPEN)

    def test_watermark_ordering(self):
        with pytest.raises(ValueError):
            SystemConfig(write_low_watermark=24, write_high_watermark=24)
        with pytest.raises(ValueError):
            SystemConfig(write_high_watermark=99, frontend_write_queue=32)

    def test_epoch_positive(self):
        with pytest.raises(ValueError):
            SystemConfig(epoch_cycles=0)


class TestDerivedValues:
    def test_peak_bandwidth(self):
        config = SystemConfig(num_mcs=4)
        per_channel = config.line_bytes / config.dram.t_burst
        assert config.peak_bandwidth == 4 * per_channel

    def test_cache_geometry(self):
        config = SystemConfig(l2_size_kb=256, l2_assoc=8, line_bytes=64)
        assert config.l2_sets * config.l2_assoc * 64 == 256 * 1024
        assert config.l3_slice_sets * config.l3_assoc * 64 == config.l3_slice_kb * 1024

    def test_lines_per_row(self):
        config = SystemConfig(row_bytes=2048, line_bytes=64)
        assert config.lines_per_row == 32


class TestPresets:
    def test_paper_32core_matches_table_iii_shape(self):
        config = SystemConfig.paper_32core()
        assert config.cores == 32
        assert (config.mesh_cols, config.mesh_rows) == (8, 4)
        assert config.num_mcs == 4
        assert config.epoch_cycles == 20_000  # 10 us at 2 GHz

    def test_default_experiment_scales(self):
        config = SystemConfig.default_experiment(cores=16, num_mcs=2)
        assert config.cores == 16
        assert config.mesh_cols * config.mesh_rows >= 16

    def test_small_test_is_small(self):
        config = SystemConfig.small_test()
        assert config.cores == 2
        assert config.num_mcs == 1

    def test_with_dram_swaps_timing(self):
        config = SystemConfig()
        slow = config.with_dram(DramTiming.ddr4_2400().frequency_scaled(4))
        assert slow.peak_bandwidth == config.peak_bandwidth / 4
        assert slow.cores == config.cores

    def test_scaled_cores(self):
        config = SystemConfig.default_experiment(cores=8).scaled_cores(6)
        assert config.cores == 6
        assert config.mesh_cols * config.mesh_rows >= 6
