"""Unit and property tests for the mesh topology and address mapping."""

from hypothesis import given, strategies as st

from repro.sim.config import SystemConfig
from repro.sim.topology import AddressMap, MeshTopology


def make_map(num_mcs=2, num_slices=8):
    config = SystemConfig.default_experiment(cores=8, num_mcs=num_mcs)
    return AddressMap(config, num_slices=num_slices), config


class TestAddressMap:
    def test_line_of_strips_offset(self):
        address_map, config = make_map()
        assert address_map.line_of(0x7F) == address_map.line_of(0x40)
        assert address_map.line_of(0x80) != address_map.line_of(0x40)

    def test_mc_and_slice_in_range(self):
        address_map, config = make_map()
        for addr in range(0, 1 << 16, 64):
            assert 0 <= address_map.mc_of(addr) < config.num_mcs
            assert 0 <= address_map.slice_of(addr) < 8

    def test_mapping_is_deterministic(self):
        address_map, _ = make_map()
        assert address_map.mc_of(0x1234) == address_map.mc_of(0x1234)
        assert address_map.slice_of(0x1234) == address_map.slice_of(0x1234)

    def test_mc_hash_is_roughly_uniform(self):
        """The paper assumes a uniform address hash (Section III-C1)."""
        address_map, config = make_map(num_mcs=2)
        counts = [0] * config.num_mcs
        lines = 4096
        for i in range(lines):
            counts[address_map.mc_of(i * 64)] += 1
        for count in counts:
            assert abs(count - lines / config.num_mcs) < lines * 0.05

    def test_sequential_lines_spread_over_banks(self):
        address_map, config = make_map()
        banks = {address_map.bank_of(i * 64) for i in range(256)}
        assert len(banks) == config.banks_per_mc

    def test_row_groups_lines(self):
        address_map, config = make_map()
        assert address_map.row_of(0) == 0
        # row index grows with address
        far = 1 << 30
        assert address_map.row_of(far) > 0


class TestMeshTopology:
    def test_tile_coordinates_cover_grid(self):
        config = SystemConfig.paper_32core()
        mesh = MeshTopology(config)
        coords = {mesh.tile_coord(t) for t in range(mesh.num_tiles)}
        assert len(coords) == 32
        assert all(0 <= x < 8 and 0 <= y < 4 for x, y in coords)

    def test_mcs_on_left_right_edges(self):
        config = SystemConfig.paper_32core()
        mesh = MeshTopology(config)
        for mc_id in range(config.num_mcs):
            x, y = mesh.mc_coord(mc_id)
            assert x in (0, config.mesh_cols - 1)

    def test_mc_coords_distinct(self):
        config = SystemConfig.paper_32core()
        mesh = MeshTopology(config)
        coords = [mesh.mc_coord(m) for m in range(config.num_mcs)]
        assert len(set(coords)) == len(coords)

    def test_latency_is_base_plus_hops(self):
        config = SystemConfig.default_experiment(cores=8, num_mcs=2)
        mesh = MeshTopology(config)
        same = mesh.tile_to_tile_latency(0, 0)
        assert same == config.noc_base_cycles
        neighbour = mesh.tile_to_tile_latency(0, 1)
        assert neighbour == config.noc_base_cycles + config.noc_hop_cycles

    def test_shortest_path_equals_manhattan_on_full_mesh(self):
        config = SystemConfig.paper_32core()
        mesh = MeshTopology(config)
        for a in range(0, mesh.num_tiles, 5):
            for b in range(0, mesh.num_tiles, 7):
                ax, ay = mesh.tile_coord(a)
                bx, by = mesh.tile_coord(b)
                manhattan = abs(ax - bx) + abs(ay - by)
                assert mesh.hops(mesh.tile_coord(a), mesh.tile_coord(b)) == manhattan

    def test_tile_to_mc_latency_positive(self):
        config = SystemConfig.default_experiment(cores=8, num_mcs=2)
        mesh = MeshTopology(config)
        for tile in range(config.cores):
            for mc in range(config.num_mcs):
                assert mesh.tile_to_mc_latency(tile, mc) >= config.noc_base_cycles


@given(addr=st.integers(min_value=0, max_value=(1 << 48) - 1))
def test_property_mapping_total_and_stable(addr):
    address_map, config = make_map()
    mc = address_map.mc_of(addr)
    assert 0 <= mc < config.num_mcs
    assert address_map.mc_of(addr) == mc
    assert 0 <= address_map.bank_of(addr) < config.banks_per_mc
    assert address_map.row_of(addr) >= 0


class TestDenseLatencyTables:
    """The flattened tables must agree with networkx shortest paths."""

    MESHES = [
        dict(cores=4, mesh_cols=2, mesh_rows=2, num_mcs=1),
        dict(cores=8, mesh_cols=4, mesh_rows=2, num_mcs=2),
        dict(cores=16, mesh_cols=4, mesh_rows=4, num_mcs=4),
        dict(cores=32, mesh_cols=8, mesh_rows=4, num_mcs=4),
    ]

    def _reference_latency(self, mesh, config, src, dst):
        import networkx as nx

        graph = nx.grid_2d_graph(config.mesh_cols, config.mesh_rows)
        hops = nx.shortest_path_length(graph, src, dst)
        return config.noc_base_cycles + hops * config.noc_hop_cycles

    def test_tables_match_networkx_shortest_paths(self):
        for params in self.MESHES:
            config = SystemConfig(**params)
            mesh = MeshTopology(config)
            for src in range(mesh.num_tiles):
                for dst in range(mesh.num_tiles):
                    expected = self._reference_latency(
                        mesh, config, mesh.tile_coord(src), mesh.tile_coord(dst)
                    )
                    assert mesh.tile_to_tile_latency(src, dst) == expected
            for tile in range(mesh.num_tiles):
                for mc in range(config.num_mcs):
                    expected = self._reference_latency(
                        mesh, config, mesh.tile_coord(tile), mesh.mc_coord(mc)
                    )
                    assert mesh.tile_to_mc_latency(tile, mc) == expected

    @given(
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=1, max_value=6),
    )
    def test_property_latency_equals_manhattan(self, cols, rows):
        """On a full grid the shortest path is the Manhattan distance."""
        config = SystemConfig(
            cores=cols * rows, mesh_cols=cols, mesh_rows=rows, num_mcs=1
        )
        mesh = MeshTopology(config)
        for src in range(mesh.num_tiles):
            sx, sy = mesh.tile_coord(src)
            for dst in range(mesh.num_tiles):
                dx, dy = mesh.tile_coord(dst)
                manhattan = abs(sx - dx) + abs(sy - dy)
                expected = config.noc_base_cycles + manhattan * config.noc_hop_cycles
                assert mesh.tile_to_tile_latency(src, dst) == expected
