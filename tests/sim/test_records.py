"""Unit tests for memory-request records."""

import pytest

from repro.sim.records import AccessType, MemoryRequest, next_request_id


def make_req(**kwargs):
    defaults = dict(addr=0x1000, access=AccessType.READ, qos_id=0, core_id=0)
    defaults.update(kwargs)
    return MemoryRequest(**defaults)


class TestAccessType:
    def test_read_is_read(self):
        assert AccessType.READ.is_read
        assert not AccessType.WRITE.is_read
        assert not AccessType.WRITEBACK.is_read

    def test_memory_write_classification(self):
        assert not make_req().is_memory_write
        assert make_req(access=AccessType.WRITE).is_memory_write
        assert make_req(access=AccessType.WRITEBACK).is_memory_write


class TestRequestIds:
    def test_ids_are_unique_and_increasing(self):
        first = next_request_id()
        second = next_request_id()
        assert second == first + 1

    def test_each_request_gets_fresh_id(self):
        a, b = make_req(), make_req()
        assert a.req_id != b.req_id


class TestLatencyProperties:
    def test_total_latency(self):
        req = make_req()
        req.created_at = 100
        req.completed_at = 450
        assert req.total_latency == 350

    def test_total_latency_requires_completion(self):
        req = make_req()
        req.created_at = 100
        with pytest.raises(ValueError):
            _ = req.total_latency

    def test_pacer_delay(self):
        req = make_req()
        req.created_at = 10
        req.released_at = 35
        assert req.pacer_delay == 25

    def test_pacer_delay_requires_release(self):
        with pytest.raises(ValueError):
            _ = make_req().pacer_delay

    def test_queue_delay(self):
        req = make_req()
        req.arrived_mc_at = 200
        req.issued_at = 260
        assert req.queue_delay == 60

    def test_queue_delay_requires_issue(self):
        with pytest.raises(ValueError):
            _ = make_req().queue_delay

    def test_fresh_request_has_no_timestamps(self):
        req = make_req()
        for field in (
            "created_at", "released_at", "arrived_mc_at",
            "dispatched_at", "issued_at", "completed_at",
        ):
            assert getattr(req, field) == -1
