"""Unit tests for the QoSMechanism base (the do-nothing mechanism)."""

from repro.sim.mechanism import QoSMechanism
from repro.sim.records import AccessType, MemoryRequest


class TestDefaults:
    def test_release_passthrough(self):
        mechanism = QoSMechanism()
        fired = []
        req = MemoryRequest(addr=0, access=AccessType.READ, qos_id=0, core_id=0)
        mechanism.request_release(0, req, lambda: fired.append(True))
        assert fired == [True]

    def test_no_policy(self):
        assert QoSMechanism().mc_policy(0) is None

    def test_hooks_are_noops(self):
        mechanism = QoSMechanism()
        req = MemoryRequest(addr=0, access=AccessType.READ, qos_id=0, core_id=0)
        mechanism.on_response(0, req)
        mechanism.on_epoch(saturated=True)
        mechanism.attach(None)  # type: ignore[arg-type]

    def test_multiplier_sentinel(self):
        assert QoSMechanism().multiplier() == -1

    def test_name(self):
        assert QoSMechanism().name == "none"
