"""Unit tests for the QoSMechanism base (the do-nothing mechanism)."""

from repro.sim.mechanism import QoSMechanism
from repro.sim.records import AccessType, MemoryRequest


class TestDefaults:
    def test_release_passthrough(self):
        mechanism = QoSMechanism()
        fired = []
        req = MemoryRequest(addr=0, access=AccessType.READ, qos_id=0, core_id=0)
        mechanism.request_release(0, req, lambda: fired.append(True))
        assert fired == [True]

    def test_no_policy(self):
        assert QoSMechanism().mc_policy(0) is None

    def test_hooks_are_noops(self):
        mechanism = QoSMechanism()
        req = MemoryRequest(addr=0, access=AccessType.READ, qos_id=0, core_id=0)
        mechanism.on_response(0, req)
        mechanism.on_epoch(saturated=True)
        mechanism.attach(None)  # type: ignore[arg-type]

    def test_multiplier_sentinel(self):
        assert QoSMechanism().multiplier() == -1

    def test_name(self):
        assert QoSMechanism().name == "none"

    def test_no_bound_report(self):
        assert QoSMechanism().bound_report() is None

    def test_prepare_config_is_identity(self):
        mechanism = QoSMechanism()
        sentinel = object()
        assert mechanism.prepare_config(sentinel, None) is sentinel


class TestUniformCounters:
    """Every mechanism inherits the ``mechanism.*`` counter namespace
    (the register_obs no-op bugfix): the base hooks count, so even a
    non-PABST mechanism reports epochs/releases/writebacks."""

    def test_fresh_counters_are_zero(self):
        mechanism = QoSMechanism()
        assert mechanism.obs_epochs == 0
        assert mechanism.obs_releases_granted == 0
        assert mechanism.obs_releases_denied == 0
        assert mechanism.obs_writeback_charges == 0

    def test_hooks_tick_the_counters(self):
        mechanism = QoSMechanism()
        req = MemoryRequest(addr=0, access=AccessType.READ, qos_id=0, core_id=0)
        mechanism.request_release(0, req, lambda: None)
        mechanism.request_release(0, req, lambda: None)
        mechanism.charge_class_writeback(0)
        mechanism.on_epoch(saturated=False)
        assert mechanism.obs_releases_granted == 2
        assert mechanism.obs_writeback_charges == 1
        assert mechanism.obs_epochs == 1

    def test_counters_are_per_instance(self):
        a, b = QoSMechanism(), QoSMechanism()
        a.on_epoch(saturated=False)
        assert a.obs_epochs == 1
        assert b.obs_epochs == 0

    def test_register_obs_provides_the_namespace(self):
        from repro.obs.registry import Registry

        registry = Registry()
        mechanism = QoSMechanism()
        mechanism.register_obs(registry)
        mechanism.on_epoch(saturated=False)
        counters = registry.counters()
        assert counters["mechanism.epochs"] == 1
        assert counters["mechanism.releases_granted"] == 0
        assert counters["mechanism.releases_denied"] == 0
        assert counters["mechanism.writeback_charges"] == 0

    def test_pabst_counters_include_pacer_activity(self):
        """PABST's overrides merge the pacers' own books into the
        uniform counters instead of double-counting."""
        from repro.core.pabst import PabstMechanism
        from repro.qos.classes import QoSRegistry
        from repro.sim.config import SystemConfig
        from repro.sim.system import System
        from repro.workloads.stream import StreamWorkload

        config = SystemConfig.small_test()
        registry = QoSRegistry()
        registry.define_class(0, "a", weight=3)
        registry.define_class(1, "b", weight=1)
        registry.assign_core(0, 0)
        registry.assign_core(1, 1)
        workloads = {core: StreamWorkload() for core in range(2)}
        mechanism = PabstMechanism()
        system = System(config, registry, workloads, mechanism=mechanism)
        system.run_epochs(6)
        system.finalize()
        assert mechanism.obs_epochs == 6
        released = sum(p.released for p in mechanism.pacers.values())
        released += sum(p.released for p in mechanism.mc_pacers.values())
        assert mechanism.obs_releases_granted == released
        assert released > 0
