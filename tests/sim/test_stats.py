"""Unit tests for statistics collection."""

import pytest

from repro.obs.streams import MemorySink
from repro.sim.records import AccessType, MemoryRequest
from repro.sim.stats import Stats


def completed_req(qos_id=0, access=AccessType.READ, size=64, created=0, done=100):
    req = MemoryRequest(addr=0x40, access=access, qos_id=qos_id, core_id=0, size=size)
    req.created_at = created
    req.completed_at = done
    return req


class TestCompletionAccounting:
    def test_read_bytes_accrue_to_class(self):
        stats = Stats()
        stats.record_completion(completed_req(qos_id=3))
        assert stats.class_stats(3).bytes_read == 64
        assert stats.class_stats(3).bytes_written == 0
        assert stats.class_stats(3).reads_completed == 1

    def test_write_and_writeback_bytes_count_as_written(self):
        stats = Stats()
        stats.record_completion(completed_req(access=AccessType.WRITE))
        stats.record_completion(completed_req(access=AccessType.WRITEBACK))
        assert stats.class_stats(0).bytes_written == 128
        assert stats.class_stats(0).writes_completed == 2

    def test_read_latency_tracked(self):
        stats = Stats()
        stats.record_completion(completed_req(created=10, done=110))
        stats.record_completion(completed_req(created=10, done=310))
        cls = stats.class_stats(0)
        assert cls.mean_read_latency == 200.0
        assert cls.read_latency_max == 300

    def test_latency_samples_only_when_enabled(self):
        silent = Stats(sample_latencies=False)
        silent.record_completion(completed_req())
        assert silent.read_latencies == {}
        sampling = Stats(sample_latencies=True)
        sampling.record_completion(completed_req(created=0, done=42))
        assert sampling.read_latencies[0] == [42]

    def test_mean_latency_empty_class_is_zero(self):
        assert Stats().class_stats(9).mean_read_latency == 0.0


class TestEpochs:
    def test_epoch_snapshot_captures_and_resets(self):
        stats = Stats()
        stats.record_completion(completed_req(qos_id=0))
        stats.record_completion(completed_req(qos_id=1))
        stats.record_completion(completed_req(qos_id=1))
        sample = stats.close_epoch(now=1000)
        assert sample.bytes_by_class == {0: 64, 1: 128}
        assert sample.cycles == 1000
        empty = stats.close_epoch(now=2000)
        assert empty.bytes_by_class == {}
        assert empty.start_cycle == 1000

    def test_epoch_bandwidth(self):
        stats = Stats()
        stats.record_completion(completed_req(qos_id=0))
        sample = stats.close_epoch(now=32)
        assert sample.bandwidth(0) == 2.0
        assert sample.bandwidth(1) == 0.0

    def test_epoch_metadata(self):
        stats = Stats()
        sample = stats.close_epoch(now=10, saturated=True, multiplier=17)
        assert sample.saturated and sample.multiplier == 17
        assert sample.epoch == 0


class TestSummaries:
    def test_bandwidth_share(self):
        stats = Stats()
        for _ in range(3):
            stats.record_completion(completed_req(qos_id=0))
        stats.record_completion(completed_req(qos_id=1))
        assert stats.bandwidth_share(0) == 0.75
        assert stats.bandwidth_share(1) == 0.25

    def test_bandwidth_share_empty_is_zero(self):
        assert Stats().bandwidth_share(0) == 0.0

    def test_total_bytes_all_classes(self):
        stats = Stats()
        stats.record_completion(completed_req(qos_id=0))
        stats.record_completion(completed_req(qos_id=5))
        assert stats.total_bytes() == 128
        assert stats.total_bytes(5) == 64

    def test_memory_efficiency(self):
        stats = Stats()
        stats.bus_busy_cycles = 80
        stats.mc_active_cycles = 100
        assert stats.memory_efficiency() == 0.8

    def test_memory_efficiency_not_clamped(self):
        # the old min(1.0, ...) clamp hid double-counted bus reservations;
        # an impossible ratio must now be visible (the sanitizer flags it)
        stats = Stats()
        assert stats.memory_efficiency() == 0.0
        stats.bus_busy_cycles = 120
        stats.mc_active_cycles = 100
        assert stats.memory_efficiency() == pytest.approx(1.2)

    def test_instruction_accounting_and_ipc(self):
        stats = Stats()
        stats.record_instructions(2, 500)
        stats.record_instructions(2, 500)
        assert stats.ipc(2, cycles=2000) == 0.5
        assert stats.ipc(2, cycles=0) == 0.0


def fully_stamped_req(qos_id=0):
    req = completed_req(qos_id=qos_id, created=0, done=100)
    req.released_at = 10
    req.arrived_mc_at = 30
    req.issued_at = 60
    return req


class TestStageAttribution:
    def test_full_stamps_attribute_every_stage(self):
        stats = Stats()
        stats.record_completion(fully_stamped_req())
        cls = stats.class_stats(0)
        assert cls.reads_attributed == 1
        assert cls.reads_unattributed == 0
        assert cls.stage_pacer_sum == 10
        assert cls.stage_noc_sum == 20
        assert cls.stage_queue_sum == 30
        assert cls.stage_service_sum == 40

    @pytest.mark.parametrize("missing", ["released_at", "arrived_mc_at", "issued_at"])
    def test_partial_stamps_count_as_unattributed(self, missing):
        # the old code silently skipped these reads; now they are counted
        # so reads_attributed + reads_unattributed == reads_completed
        stats = Stats()
        req = fully_stamped_req()
        setattr(req, missing, -1)
        stats.record_completion(req)
        cls = stats.class_stats(0)
        assert cls.reads_completed == 1
        assert cls.reads_attributed == 0
        assert cls.reads_unattributed == 1
        assert cls.stage_pacer_sum == 0

    def test_unattributed_reads_still_count_latency(self):
        stats = Stats()
        req = fully_stamped_req()
        req.issued_at = -1
        stats.record_completion(req)
        assert stats.class_stats(0).read_latency_sum == 100


class TestEpochSinks:
    def test_close_epoch_publishes_to_every_sink(self):
        stats = Stats()
        first, second = MemorySink(), MemorySink()
        stats.add_sink(first)
        stats.add_sink(second)
        stats.record_completion(completed_req(qos_id=1))
        stats.close_epoch(now=32, saturated=True, multiplier=5)
        assert len(first) == len(second) == 1
        record = first.samples[0]
        assert record["bytes_by_class"] == {1: 64}
        assert record["bandwidth_by_class"] == {1: 2.0}
        assert record["saturated"] is True
        assert record["multiplier"] == 5

    def test_no_sinks_publishes_nothing(self):
        stats = Stats()
        stats.close_epoch(now=10)
        assert stats.sinks == ()

    def test_zero_length_final_epoch_has_zero_bandwidth(self):
        # a run ending exactly on an epoch boundary produces a final
        # EpochSample with cycles == 0; no division by zero anywhere
        stats = Stats()
        stats.close_epoch(now=100)
        sink = MemorySink()
        stats.add_sink(sink)
        stats.record_completion(completed_req())
        sample = stats.close_epoch(now=100)
        assert sample.cycles == 0
        assert sample.bandwidth(0) == 0.0
        assert sink.samples[0]["bandwidth_by_class"] == {0: 0.0}

    def test_multiplier_sentinel_maps_to_none(self):
        # -1 means "no QoS epoch ran"; sinks see JSON null, not a magic -1
        stats = Stats()
        sink = MemorySink()
        stats.add_sink(sink)
        stats.close_epoch(now=10)
        assert sink.samples[0]["multiplier"] is None
