"""Unit tests for the L2/L3 hierarchy semantics PABST depends on."""

import pytest

from repro.cache.hierarchy import CacheHierarchy, HitLevel
from repro.cache.partition import WayPartition
from repro.sim.config import SystemConfig
from repro.sim.topology import AddressMap


def make_hierarchy(partition=None, config=None):
    config = config or SystemConfig.small_test()
    address_map = AddressMap(config, num_slices=config.cores)
    return CacheHierarchy(config, address_map, l3_partition=partition), config


class TestLevels:
    def test_cold_access_goes_to_memory(self):
        hierarchy, _ = make_hierarchy()
        outcome = hierarchy.access(0, 0x1000, False, qos_id=0)
        assert outcome.level is HitLevel.MEMORY
        assert outcome.goes_to_memory and outcome.l2_miss

    def test_second_access_hits_l2(self):
        hierarchy, _ = make_hierarchy()
        hierarchy.access(0, 0x1000, False, 0)
        outcome = hierarchy.access(0, 0x1000, False, 0)
        assert outcome.level is HitLevel.L2
        assert not outcome.l2_miss and not outcome.goes_to_memory

    def test_l2_evicted_line_hits_l3(self):
        hierarchy, config = make_hierarchy()
        l2_lines = config.l2_sets * config.l2_assoc
        base = 0x100000
        hierarchy.access(0, base, False, 0)
        # push the first line out of the (tiny) L2 by filling it
        addr = base + 0x40
        step = config.line_bytes * config.l2_sets  # same-set conflicts
        for i in range(config.l2_assoc + 1):
            hierarchy.access(0, base + (i + 1) * step, False, 0)
        outcome = hierarchy.access(0, base, False, 0)
        assert outcome.level is HitLevel.L3

    def test_sharing_through_l3_across_cores(self):
        hierarchy, _ = make_hierarchy()
        hierarchy.access(0, 0x2000, False, 0)
        outcome = hierarchy.access(1, 0x2000, False, 0)
        assert outcome.level is HitLevel.L3  # other core's L2 missed, L3 hit


class TestWritebacks:
    def _fill_class_ways(self, hierarchy, config, qos_id, base, is_write):
        """Stream far past the L3 capacity to force evictions."""
        total_lines = config.l3_slice_sets * config.l3_assoc * config.cores
        writebacks = []
        for i in range(total_lines * 3):
            outcome = hierarchy.access(
                0, base + i * config.line_bytes, is_write, qos_id
            )
            writebacks.extend(outcome.mem_writebacks)
        return writebacks

    def test_clean_stream_generates_no_writebacks(self):
        hierarchy, config = make_hierarchy()
        writebacks = self._fill_class_ways(hierarchy, config, 0, 0, is_write=False)
        assert writebacks == []

    def test_write_stream_generates_writebacks(self):
        hierarchy, config = make_hierarchy()
        writebacks = self._fill_class_ways(hierarchy, config, 0, 0, is_write=True)
        assert len(writebacks) > 0
        # writebacks are line-aligned and attributed to their owner
        assert all(wb.addr % config.line_bytes == 0 for wb in writebacks)
        assert all(wb.owner_qos_id == 0 for wb in writebacks)

    def test_writeback_owner_tracked_across_classes(self):
        """A clean streamer evicting another class's dirty lines reports
        the *owner* so Section V-C accounting policies can differ."""
        config = SystemConfig.small_test()
        hierarchy, _ = make_hierarchy(config=config)
        # class 7 dirties a footprint roughly the size of the L3
        total_lines = config.l3_slice_sets * config.l3_assoc * config.cores
        for i in range(total_lines):
            hierarchy.access(0, i * 64, True, qos_id=7)
        # class 1 streams cleanly far past the cache, evicting 7's lines
        owners = set()
        for i in range(total_lines * 3):
            outcome = hierarchy.access(1, (1 << 30) + i * 64, False, qos_id=1)
            owners.update(wb.owner_qos_id for wb in outcome.mem_writebacks)
        assert 7 in owners


class TestPartitionIsolation:
    def test_streaming_class_cannot_evict_neighbour(self):
        config = SystemConfig.small_test()
        partition = WayPartition.exclusive(config.l3_assoc, {0: 8, 1: 8})
        hierarchy, _ = make_hierarchy(partition=partition, config=config)
        # class 0 warms a small set
        resident = [0x40 * i for i in range(16)]
        for addr in resident:
            hierarchy.access(0, addr, False, 0)
        # class 1 streams way past the whole cache
        total = config.l3_slice_sets * config.l3_assoc * config.cores
        for i in range(total * 2):
            hierarchy.access(1, 0x40000000 + i * 64, False, 1)
        # class 0 lines survive in the L3 (L2 may have evicted them)
        occupancy = hierarchy.l3_occupancy_by_class()
        assert occupancy.get(0, 0) >= len(resident) // 2

    def test_occupancy_aggregation(self):
        hierarchy, _ = make_hierarchy()
        hierarchy.access(0, 0x0, False, 0)
        hierarchy.access(0, 0x40, False, 1)
        occupancy = hierarchy.l3_occupancy_by_class()
        assert occupancy.get(0, 0) >= 1 and occupancy.get(1, 0) >= 1

    def test_l3_capacity_property(self):
        hierarchy, config = make_hierarchy()
        expected = config.cores * config.l3_slice_kb * 1024
        assert hierarchy.l3_capacity_bytes == expected

    def test_l2_miss_rate_tracked(self):
        hierarchy, _ = make_hierarchy()
        hierarchy.access(0, 0x0, False, 0)
        hierarchy.access(0, 0x0, False, 0)
        assert hierarchy.l2_miss_rate(0) == pytest.approx(0.5)
