"""Unit and property tests for the set-associative cache model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.cache import SetAssociativeCache
from repro.cache.partition import WayPartition


def make_cache(num_sets=4, assoc=2, partition=None, replacement="lru"):
    return SetAssociativeCache(
        "test", num_sets=num_sets, assoc=assoc, line_bytes=64,
        partition=partition, replacement=replacement,
    )


class TestGeometry:
    def test_capacity(self):
        assert make_cache(num_sets=4, assoc=2).capacity_bytes == 4 * 2 * 64

    def test_line_and_set_mapping(self):
        cache = make_cache(num_sets=4)
        assert cache.line_addr(0x47) == 0x40
        assert cache.set_index(0x40) == 1
        assert cache.set_index(0x140) == 1  # wraps modulo num_sets

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ValueError):
            make_cache(num_sets=3)

    def test_rejects_partition_assoc_mismatch(self):
        with pytest.raises(ValueError):
            make_cache(assoc=2, partition=WayPartition(4))


class TestHitMiss:
    def test_first_access_misses_then_hits(self):
        cache = make_cache()
        assert not cache.access(0x100, False, qos_id=0).hit
        assert cache.access(0x100, False, qos_id=0).hit
        assert cache.hits == 1 and cache.misses == 1

    def test_same_line_different_offset_hits(self):
        cache = make_cache()
        cache.access(0x100, False, 0)
        assert cache.access(0x13F, False, 0).hit

    def test_probe_does_not_allocate_or_touch(self):
        cache = make_cache()
        assert not cache.probe(0x100)
        cache.access(0x100, False, 0)
        assert cache.probe(0x100)
        assert cache.hits == 0 and cache.misses == 1

    def test_no_allocate_miss(self):
        cache = make_cache()
        result = cache.access(0x100, False, 0, allocate=False)
        assert not result.hit and result.victim is None
        assert not cache.probe(0x100)

    def test_miss_rate(self):
        cache = make_cache()
        cache.access(0x100, False, 0)
        cache.access(0x100, False, 0)
        assert cache.miss_rate == 0.5
        assert make_cache().miss_rate == 0.0


class TestEvictionAndDirty:
    def test_lru_victim_is_least_recent(self):
        cache = make_cache(num_sets=1, assoc=2)
        cache.access(0x000, False, 0)
        cache.access(0x040, False, 0)
        cache.access(0x000, False, 0)        # touch line 0
        result = cache.access(0x080, False, 0)
        assert result.victim is not None
        assert result.victim.line_addr == 0x040
        assert cache.probe(0x000) and not cache.probe(0x040)

    def test_dirty_eviction_flagged(self):
        cache = make_cache(num_sets=1, assoc=1)
        cache.access(0x000, True, 0)
        result = cache.access(0x040, False, 0)
        assert result.dirty_eviction
        assert cache.dirty_evictions == 1

    def test_clean_eviction_not_flagged(self):
        cache = make_cache(num_sets=1, assoc=1)
        cache.access(0x000, False, 0)
        result = cache.access(0x040, False, 0)
        assert result.victim is not None and not result.dirty_eviction

    def test_write_hit_marks_dirty(self):
        cache = make_cache(num_sets=1, assoc=1)
        cache.access(0x000, False, 0)
        cache.access(0x000, True, 0)
        victim = cache.access(0x040, False, 0).victim
        assert victim is not None and victim.dirty


class TestFillAndInvalidate:
    def test_fill_installs_without_demand_counters(self):
        cache = make_cache()
        assert cache.fill(0x100, qos_id=1) is None
        assert cache.probe(0x100)
        assert cache.hits == 0 and cache.misses == 0

    def test_fill_existing_line_merges_dirty(self):
        cache = make_cache(num_sets=1, assoc=1)
        cache.access(0x000, False, 0)
        cache.fill(0x000, qos_id=0, dirty=True)
        victim = cache.access(0x040, False, 0).victim
        assert victim is not None and victim.dirty

    def test_invalidate_returns_line(self):
        cache = make_cache()
        cache.access(0x100, True, 3)
        line = cache.invalidate(0x100)
        assert line is not None and line.dirty and line.qos_id == 3
        assert not cache.probe(0x100)
        assert cache.invalidate(0x100) is None


class TestPartitioning:
    def test_class_cannot_evict_outside_its_ways(self):
        partition = WayPartition.exclusive(2, {0: 1, 1: 1})
        cache = make_cache(num_sets=1, assoc=2, partition=partition)
        cache.access(0x000, False, 0)   # class 0 fills way 0
        cache.access(0x040, False, 1)   # class 1 fills way 1
        cache.access(0x080, False, 1)   # class 1 must evict its own line
        assert cache.probe(0x000)
        assert not cache.probe(0x040)
        assert cache.probe(0x080)

    def test_hit_allowed_in_foreign_way(self):
        partition = WayPartition.exclusive(2, {0: 1, 1: 1})
        cache = make_cache(num_sets=1, assoc=2, partition=partition)
        cache.access(0x000, False, 0)
        assert cache.access(0x000, False, 1).hit  # CAT semantics

    def test_occupancy_by_class(self):
        partition = WayPartition.exclusive(4, {0: 2, 1: 2})
        cache = make_cache(num_sets=2, assoc=4, partition=partition)
        cache.access(0x000, False, 0)
        cache.access(0x040, False, 1)
        cache.access(0x080, False, 1)
        occ = cache.occupancy_by_class()
        assert occ == {0: 1, 1: 2}


class TestReplacementPolicies:
    def test_random_policy_runs(self):
        cache = make_cache(num_sets=1, assoc=2, replacement="random")
        for addr in range(0, 0x200, 0x40):
            cache.access(addr, False, 0)
        assert cache.evictions > 0

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            make_cache(replacement="mru")


@settings(max_examples=50)
@given(
    addrs=st.lists(
        st.integers(min_value=0, max_value=0x4000).map(lambda a: a * 64),
        min_size=1,
        max_size=200,
    )
)
def test_property_occupancy_never_exceeds_capacity(addrs):
    cache = make_cache(num_sets=4, assoc=2)
    for addr in addrs:
        cache.access(addr, False, qos_id=addr % 3)
    total = sum(cache.occupancy_by_class().values())
    assert total <= cache.num_sets * cache.assoc
    assert cache.hits + cache.misses == len(addrs)


@settings(max_examples=50)
@given(
    addrs=st.lists(
        st.integers(min_value=0, max_value=63).map(lambda a: a * 64),
        min_size=1,
        max_size=100,
    )
)
def test_property_working_set_within_capacity_never_evicts_after_warm(addrs):
    """LRU with a working set <= capacity: second pass is all hits."""
    unique = list(dict.fromkeys(addrs))[:8]
    cache = make_cache(num_sets=1, assoc=8)
    for addr in unique:
        cache.access(addr, False, 0)
    for addr in unique:
        assert cache.access(addr, False, 0).hit
