"""Unit tests for way-based cache partitioning."""

import pytest
from hypothesis import given, strategies as st

from repro.cache.partition import WayPartition


class TestMasks:
    def test_default_mask_allows_all_ways(self):
        partition = WayPartition(8)
        assert partition.mask(0) == 0xFF
        assert partition.allowed_ways(0) == tuple(range(8))

    def test_set_mask(self):
        partition = WayPartition(8)
        partition.set_mask(1, 0b00001111)
        assert partition.allowed_ways(1) == (0, 1, 2, 3)

    def test_set_ways(self):
        partition = WayPartition(4)
        partition.set_ways(0, [1, 3])
        assert partition.mask(0) == 0b1010

    def test_invalid_masks_rejected(self):
        partition = WayPartition(4)
        with pytest.raises(ValueError):
            partition.set_mask(0, 0)
        with pytest.raises(ValueError):
            partition.set_mask(0, 1 << 4)
        with pytest.raises(ValueError):
            partition.set_ways(0, [4])

    def test_invalid_assoc_rejected(self):
        with pytest.raises(ValueError):
            WayPartition(0)


class TestExclusive:
    def test_exclusive_partitions_do_not_overlap(self):
        partition = WayPartition.exclusive(16, {0: 8, 1: 8})
        assert partition.is_exclusive()
        assert set(partition.allowed_ways(0)) & set(partition.allowed_ways(1)) == set()
        assert len(partition.allowed_ways(0)) == 8

    def test_exclusive_overflow_rejected(self):
        with pytest.raises(ValueError):
            WayPartition.exclusive(8, {0: 5, 1: 4})

    def test_exclusive_zero_ways_rejected(self):
        with pytest.raises(ValueError):
            WayPartition.exclusive(8, {0: 0})

    def test_overlap_detection(self):
        partition = WayPartition(8)
        partition.set_mask(0, 0b0011)
        partition.set_mask(1, 0b0110)
        assert not partition.is_exclusive()


class TestEqualSplit:
    def test_even_division(self):
        partition = WayPartition.equal_split(16, [0, 1, 2, 3])
        assert all(len(partition.allowed_ways(q)) == 4 for q in range(4))
        assert partition.is_exclusive()

    def test_remainder_goes_to_lowest_ids(self):
        partition = WayPartition.equal_split(10, [0, 1, 2])
        sizes = [len(partition.allowed_ways(q)) for q in range(3)]
        assert sizes == [4, 3, 3]

    def test_too_many_classes_rejected(self):
        with pytest.raises(ValueError):
            WayPartition.equal_split(2, [0, 1, 2])

    def test_empty_classes_rejected(self):
        with pytest.raises(ValueError):
            WayPartition.equal_split(8, [])


@given(
    assoc=st.integers(min_value=1, max_value=32),
    counts=st.lists(st.integers(min_value=1, max_value=8), min_size=1, max_size=6),
)
def test_property_exclusive_covers_exactly_requested_ways(assoc, counts):
    way_counts = {qos: count for qos, count in enumerate(counts)}
    if sum(counts) > assoc:
        with pytest.raises(ValueError):
            WayPartition.exclusive(assoc, way_counts)
        return
    partition = WayPartition.exclusive(assoc, way_counts)
    assert partition.is_exclusive()
    for qos, count in way_counts.items():
        assert len(partition.allowed_ways(qos)) == count
    used = [w for qos in way_counts for w in partition.allowed_ways(qos)]
    assert len(used) == len(set(used))
