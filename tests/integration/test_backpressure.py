"""Tests for the backpressure path outside the memory controllers.

When a front-end queue fills, requests wait in per-source FIFOs admitted
round-robin (NoC injection arbitration).  Priorities deliberately do NOT
apply out there — that is the Fig. 1b failure mode — but fairness across
sources must hold, and nothing may be lost or reordered within a source.
"""

from repro.qos.classes import QoSRegistry
from repro.sim.config import SystemConfig
from repro.sim.records import AccessType, MemoryRequest
from repro.sim.system import System
from repro.workloads.stream import StreamWorkload


def make_system(cores=4):
    config = SystemConfig.small_test().scaled_cores(cores)
    registry = QoSRegistry()
    registry.define_class(0, "only", weight=1)
    workloads = {}
    for core in range(cores):
        registry.assign_core(core, 0)
        workloads[core] = StreamWorkload(gap=100_000)  # effectively idle
    return System(config, registry, workloads)


def read_for(system, core_id, index):
    # synthetic source ids (100+) bypass the real cores' MSHR bookkeeping
    # so these hand-injected requests terminate at the controller
    req = MemoryRequest(
        addr=(core_id << 32) | (index * 64),
        access=AccessType.READ,
        qos_id=0,
        core_id=100 + core_id,
    )
    req.created_at = system.engine.now
    req.released_at = system.engine.now
    req.noc_seq = system._noc_seq
    system._noc_seq += 1
    req.mc_id = 0
    return req


class TestRoundRobinAdmission:
    def _flood(self, system, per_core=30):
        """Fill controller 0 and build per-core overflow queues.

        Arrivals buffer until the cycle's late-phase ingress pump runs,
        so the flood finishes by dispatching the current cycle.
        """
        delivered = []
        for index in range(per_core):
            for core in system.cores:
                req = read_for(system, core, index)
                req.mc_id = 0
                system._deliver(req)
                delivered.append(req)
        system.engine.run_until(system.engine.now)
        return delivered

    def test_overflow_lands_in_per_core_fifos(self):
        system = make_system()
        self._flood(system)
        pending = system._mc_pending_reads[0]
        assert len(pending) == len(system.cores)
        # each core's FIFO preserved its own order
        for core, queue in pending.items():
            indices = [req.addr & 0xFFFFFFFF for req in queue]
            assert indices == sorted(indices)

    def test_everything_eventually_admitted_and_served(self):
        system = make_system()
        delivered = self._flood(system)
        system.engine.run()
        system.finalize()
        assert system.blocked_at_mc(0) == 0
        completed = system.stats.class_stats(0).reads_completed
        assert completed == len(delivered)

    def test_admission_interleaves_sources(self):
        """No single flooding source head-blocks the others."""
        system = make_system()
        self._flood(system, per_core=20)
        system.engine.run()
        # every core's first request must have been served long before any
        # core's last request: arrival stamps interleave across cores
        arrivals = {core: [] for core in system.cores}
        # reconstruct from completion ordering via request ids is fragile;
        # instead assert the RR pointer advanced across sources
        assert system._mc_rr_pointer[0] > 0

    def test_priorities_do_not_apply_in_overflow(self):
        """The overflow FIFO ignores QoS: strict per-source FIFO order."""
        system = make_system(cores=2)
        first = read_for(system, 0, 0)
        second = read_for(system, 0, 1)
        system._queue_pending_read(0, first)
        system._queue_pending_read(0, second)
        system._admit_pending_reads(0)
        # first-in was admitted first regardless of any priority state
        assert first.arrived_mc_at >= 0
