"""Exact end-to-end latency checks on an idle machine.

With a single in-flight access there is no queueing, so the request's
total latency must equal the sum of the configured component latencies —
these tests pin the timing composition of the whole request path
(L2 -> NoC -> L3 slice -> NoC -> controller -> bank prep -> data burst ->
NoC back).
"""


from repro.qos.classes import QoSRegistry
from repro.sim.config import SystemConfig
from repro.sim.system import System
from repro.workloads.base import Access, Workload


class OneShot(Workload):
    """Issues a fixed list of accesses on one context, then stops."""

    def __init__(self, accesses):
        super().__init__()
        self.name = "one-shot"
        self.contexts = 1
        self._accesses = list(accesses)
        self.completions = []

    def next_access(self, context):
        if not self._accesses:
            return None
        return self._accesses.pop(0)

    def on_complete(self, context, access, now):
        self.completions.append((access.addr, now))


def make_system(workloads):
    config = SystemConfig.default_experiment(cores=2, num_mcs=2)
    registry = QoSRegistry()
    registry.define_class(0, "only", weight=1)
    for core in workloads:
        registry.assign_core(core, 0)
    return System(config, registry, workloads), config


ADDR = 0x4000


class TestMemoryPath:
    def test_cold_access_latency_is_component_sum(self):
        workload = OneShot([Access(addr=ADDR)])
        system, config = make_system({0: workload})
        system.run(10_000)

        slice_tile = system.address_map.slice_of(ADDR) % config.cores
        mc_id = system.address_map.mc_of(ADDR)
        expected = (
            system.topology.tile_to_tile_latency(0, slice_tile)
            + config.l3_latency
            + system.topology.tile_to_mc_latency(slice_tile, mc_id)
            + config.dram.access_prep(row_hit=False)
            + config.dram.t_burst
            + system.topology.tile_to_mc_latency(0, mc_id)
        )
        assert workload.completions == [(ADDR, expected)]

    def test_l2_hit_latency(self):
        workload = OneShot([Access(addr=ADDR), Access(addr=ADDR)])
        system, config = make_system({0: workload})
        system.run(10_000)
        first = workload.completions[0][1]
        second = workload.completions[1][1]
        assert second - first == config.l2_latency

    def test_l3_hit_latency_round_trip(self):
        # core 1 warms the line; core 0 then misses L2 but hits L3
        warmer = OneShot([Access(addr=ADDR)])
        prober = OneShot([Access(addr=ADDR, gap=2000)])
        system, config = make_system({0: prober, 1: warmer})
        system.run(20_000)

        slice_tile = system.address_map.slice_of(ADDR) % config.cores
        expected = (
            2 * system.topology.tile_to_tile_latency(0, slice_tile)
            + config.l3_latency
        )
        (addr, done), = prober.completions
        assert addr == ADDR
        assert done == 2000 + expected

    def test_dependent_chain_serializes(self):
        accesses = [Access(addr=ADDR + i * 0x100000) for i in range(3)]
        workload = OneShot(accesses)
        system, config = make_system({0: workload})
        system.run(50_000)
        times = [done for _, done in workload.completions]
        assert len(times) == 3
        # one context: each access starts only after the previous completes
        min_service = config.dram.t_burst + config.noc_base_cycles
        assert times[1] - times[0] > min_service
        assert times[2] - times[1] > min_service


class TestMshrMerging:
    def test_two_contexts_same_line_one_memory_access(self):
        class TwoSame(Workload):
            def __init__(self):
                super().__init__()
                self.name = "two-same"
                self.contexts = 2
                self._remaining = {0: 1, 1: 1}
                self.completions = []

            def next_access(self, context):
                if self._remaining[context] == 0:
                    return None
                self._remaining[context] = 0
                return Access(addr=ADDR)

            def on_complete(self, context, access, now):
                self.completions.append((context, now))

        workload = TwoSame()
        system, config = make_system({0: workload})
        system.run(10_000)
        assert len(workload.completions) == 2
        # the functional-first cache model fills at lookup time, so the
        # second context sees an L2 hit; either way exactly one request
        # reaches DRAM -- no duplicated memory traffic for one line
        reads = sum(mc.reads_accepted for mc in system.controllers)
        assert reads == 1
