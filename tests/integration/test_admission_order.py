"""Regression test pinning the round-robin admission order.

``System._admit_pending_reads`` was rewritten to rotate an incrementally
maintained sorted source ring (one bisect per pass) instead of calling
``sorted()`` on every admission.  This test pins the exact admission
sequence for a mixed arrival pattern, so any future change to the ring
bookkeeping that perturbs fairness or ordering fails loudly.
"""

from tests.integration.test_backpressure import make_system, read_for


class BudgetController:
    """Stand-in controller admitting up to ``budget`` requests."""

    def __init__(self):
        self.budget = 0
        self.admitted = []

    def try_enqueue(self, req):
        if self.budget <= 0:
            return False
        self.budget -= 1
        req.arrived_mc_at = 0
        self.admitted.append(req.core_id - 100)
        return True


def test_round_robin_admission_order_is_pinned():
    system = make_system(cores=6)
    controller = BudgetController()
    system.controllers[0] = controller

    # Arrival pattern: core 3 twice, core 1 twice, core 5, core 0, core 5
    # again — everything blocks (budget 0) into per-core overflow FIFOs.
    arrivals = [(3, 2), (1, 2), (5, 1), (0, 1), (5, 1)]
    index = 0
    for core, count in arrivals:
        for _ in range(count):
            system._queue_pending_read(0, read_for(system, core, index))
            index += 1
    assert sorted(system._mc_pending_reads[0]) == [100, 101, 103, 105]

    # Three slots open: the ring admits sources 0, 1, 3 (sorted order from
    # pointer 0), then blocks trying core 5; the pointer parks past 3.
    controller.budget = 3
    system._admit_pending_reads(0)
    assert controller.admitted == [0, 1, 3]
    # the ring tracks the synthetic source ids (100 + core)
    assert system._mc_rr_pointer[0] == 104

    # Two more sources arrive while blocked.
    for core in (2, 3):
        system._queue_pending_read(0, read_for(system, core, index))
        index += 1

    # Unlimited budget: admission resumes AT the pointer (5 first, not 0),
    # then wraps 1, 2, 3, and drains the remainders round-robin.
    controller.budget = 100
    system._admit_pending_reads(0)
    assert controller.admitted == [0, 1, 3, 5, 1, 2, 3, 5, 3]
    assert controller.budget == 100 - 6
    assert not system._mc_pending_reads[0]
    assert not system._mc_read_sources[0]
    assert system._mc_rr_pointer[0] == 104
