"""Parametrized end-to-end shares: observed bandwidth tracks the weights.

This is Eq. 5 verified through the whole stack (cores, caches, governor,
pacer, arbiter, controller) for several weight ratios — the paper's
Principle 1 beyond the single 7:3 point of Fig. 5.
"""

import pytest

from repro.core.pabst import PabstMechanism
from repro.qos.classes import QoSRegistry
from repro.sim.config import SystemConfig
from repro.sim.system import System
from repro.workloads.stream import StreamWorkload


def run_ratio(weight_hi: int, weight_lo: int, epochs=100, warmup=40):
    config = SystemConfig.default_experiment(cores=8, num_mcs=2)
    registry = QoSRegistry()
    registry.define_class(0, "hi", weight=weight_hi, l3_ways=8)
    registry.define_class(1, "lo", weight=weight_lo, l3_ways=8)
    workloads = {}
    for core in range(8):
        registry.assign_core(core, 0 if core < 4 else 1)
        workloads[core] = StreamWorkload()
    system = System(config, registry, workloads, mechanism=PabstMechanism())
    system.run_epochs(epochs)
    system.finalize()
    hi = sum(e.bytes_by_class.get(0, 0) for e in system.stats.epochs[warmup:])
    lo = sum(e.bytes_by_class.get(1, 0) for e in system.stats.epochs[warmup:])
    return hi / (hi + lo)


@pytest.mark.parametrize(
    "weight_hi,weight_lo",
    [(1, 1), (2, 1), (3, 1), (7, 3), (8, 1)],
)
def test_bandwidth_share_tracks_weight_ratio(weight_hi, weight_lo):
    share = run_ratio(weight_hi, weight_lo)
    entitled = weight_hi / (weight_hi + weight_lo)
    # absolute tolerance scales with how extreme the split is: very skewed
    # splits leave the low class MSHR-limited noise room
    assert share == pytest.approx(entitled, abs=0.06)
