"""Smoke tests: every example script runs and prints its headline output.

Examples are the public face of the library; these tests run them as real
subprocesses (reduced epochs where the script takes a flag) so a packaging
or API regression cannot ship silently.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(script: str, *args: str, timeout: int = 300) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "Without bandwidth QoS" in out
        assert "With PABST" in out
        assert "prod" in out and "batch" in out

    def test_performance_isolation(self):
        out = run_example(
            "performance_isolation.py", "--epochs", "30", "--workload", "sphinx3"
        )
        assert "weighted slowdown" in out
        assert "pabst" in out

    def test_iaas_consolidation(self):
        out = run_example(
            "iaas_consolidation.py", "--epochs", "30", "--workload", "mcf"
        )
        assert "static 1/4 reservation" in out
        assert "tenant vm3" in out

    def test_memcached_colocation(self):
        out = run_example("memcached_colocation.py", "--epochs", "40")
        assert "isolated" in out
        assert "co-located, PABST" in out

    def test_adaptive_policy(self):
        out = run_example("adaptive_policy.py", "--rounds", "6")
        assert "converged" in out


@pytest.mark.parametrize(
    "script",
    [
        "quickstart.py",
        "performance_isolation.py",
        "iaas_consolidation.py",
        "memcached_colocation.py",
        "adaptive_policy.py",
    ],
)
def test_examples_have_usage_docs(script):
    text = (EXAMPLES / script).read_text()
    assert text.lstrip().startswith(('#!/usr/bin/env python3'))
    assert '"""' in text
