"""Integration tests for the observability layer on a live System.

Covers the three obs surfaces end to end: the counter registry hung off
``System.obs``, the request tracer wired through engine/pacer/controller
hook sites, and epoch metric sinks fed by ``Stats.close_epoch`` — plus
the contracts that matter across features: byte-identical results with
obs disabled, and checkpoint round-trips that keep registry state.
"""

import pytest

from repro.core.pabst import PabstMechanism
from repro.obs.streams import MemorySink
from repro.obs.trace import RequestTracer, validate_chrome_trace
from repro.qos.classes import QoSRegistry
from repro.sim.config import SystemConfig
from repro.sim.system import System
from repro.workloads.stream import StreamWorkload


def make_system(mechanism=None, tracer=None, cores=2):
    registry = QoSRegistry()
    registry.define_class(0, "hi", weight=3)
    registry.define_class(1, "lo", weight=1)
    workloads = {}
    for core in range(cores):
        registry.assign_core(core, 0 if core < cores // 2 else 1)
        workloads[core] = StreamWorkload()
    return System(
        SystemConfig.small_test(),
        registry,
        workloads,
        mechanism=mechanism,
        tracer=tracer,
    )


class TestRegistry:
    def test_every_system_exposes_a_registry(self):
        system = make_system()
        assert "stats.requests_enqueued" in system.obs
        assert "mc0.queue_depth" in system.obs
        assert "mshr.c0.outstanding" in system.obs
        assert "l2.c0.misses" in system.obs

    def test_counters_track_a_run(self):
        system = make_system()
        system.run_epochs(3)
        counters = system.obs.counters()
        assert counters["stats.requests_enqueued"] > 0
        accepted = sum(
            value for name, value in counters.items()
            if name.endswith("reads_accepted")
        )
        assert accepted > 0
        assert counters["l2.c0.misses"] > 0

    def test_pabst_mechanism_registers_its_metrics(self):
        system = make_system(mechanism=PabstMechanism())
        names = set(system.obs.names())
        assert "pacer.c0.released" in names
        assert "pacer.c0.tokens_stalled" in names
        assert "governor.c0.multiplier" in names
        assert "governor.c0.epochs" in names
        assert "arbiter.mc0.deadline_inversions" in names
        system.run_epochs(3)
        counters = system.obs.counters()
        assert counters["pacer.c0.released"] > 0
        assert counters["governor.c0.epochs"] == 3

    def test_registry_snapshot_survives_checkpoint(self, tmp_path):
        from repro.runner.checkpoint import restore_system, snapshot_system

        system = make_system(mechanism=PabstMechanism())
        system.run_epochs(2)
        before = system.obs.snapshot()
        assert before["counters"]["stats.requests_enqueued"] > 0
        checkpoint = snapshot_system(system, warmup_epochs=2, prefix_hash="x")
        restored = restore_system(checkpoint)
        # restored counters resume from the snapshot, not from zero
        assert restored.obs.snapshot() == before
        restored.run_epochs(1)
        after = restored.obs.counters()
        assert (
            after["stats.requests_enqueued"]
            > before["counters"]["stats.requests_enqueued"]
        )


class TestTracer:
    def test_traced_run_records_full_lifecycles(self):
        tracer = RequestTracer(capacity=1 << 20)
        system = make_system(tracer=tracer)
        system.run_epochs(2)
        assert system.engine.tracer is tracer
        assert tracer.recorded > 0 and tracer.dropped == 0
        by_req = {}
        for stage, req_id, *_ in tracer.transitions():
            by_req.setdefault(req_id, []).append(stage)
        # at least one demand read walked every stage in order
        assert any(stages == [0, 1, 2, 3, 4] for stages in by_req.values())
        doc = tracer.to_chrome_trace()
        assert validate_chrome_trace(doc) > 0
        names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "X"}
        assert {"pacer", "queue", "service"} <= names

    def test_untraced_system_has_no_tracer(self):
        assert make_system().engine.tracer is None

    def test_tracing_does_not_change_results(self):
        plain = make_system()
        plain.run_epochs(4)
        traced = make_system(tracer=RequestTracer())
        traced.run_epochs(4)
        assert [s.bytes_by_class for s in plain.stats.epochs] == [
            s.bytes_by_class for s in traced.stats.epochs
        ]

    def test_shared_tracer_across_systems_never_collides(self):
        # request ids are process-global, so two systems feeding one
        # tracer interleave cleanly (the fig modules rely on this)
        tracer = RequestTracer(capacity=1 << 20)
        for _ in range(2):
            make_system(tracer=tracer).run_epochs(1)
        doc = tracer.to_chrome_trace()
        assert validate_chrome_trace(doc) > 0


class TestEpochSinks:
    def test_sink_sees_one_record_per_epoch(self):
        system = make_system()
        sink = MemorySink()
        system.stats.add_sink(sink)
        system.run_epochs(3)
        assert len(sink) == 3
        assert [r["epoch"] for r in sink.samples] == [0, 1, 2]
        assert all(r["cycles"] > 0 for r in sink.samples)

    def test_pabst_multiplier_reaches_the_stream(self):
        system = make_system(mechanism=PabstMechanism())
        sink = MemorySink()
        system.stats.add_sink(sink)
        system.run_epochs(2)
        assert all(r["multiplier"] is not None for r in sink.samples)


class TestDisabledModeIsFree:
    def test_reports_identical_with_and_without_obs_consumers(self):
        # sampling the registry reads attributes components maintain
        # anyway; a run that is never sampled must be byte-identical
        sampled = make_system(mechanism=PabstMechanism())
        sampled.run_epochs(3)
        _ = sampled.obs.snapshot()
        plain = make_system(mechanism=PabstMechanism())
        plain.run_epochs(3)
        assert [s.bytes_by_class for s in sampled.stats.epochs] == [
            s.bytes_by_class for s in plain.stats.epochs
        ]


class TestSanitizerStatsInvariants:
    def make_sanitized_system(self):
        registry = QoSRegistry()
        registry.define_class(0, "hi", weight=3)
        registry.define_class(1, "lo", weight=1)
        registry.assign_core(0, 0)
        registry.assign_core(1, 1)
        return System(
            SystemConfig.small_test(),
            registry,
            {0: StreamWorkload(), 1: StreamWorkload()},
            sanitize=True,
        )

    def test_healthy_run_passes_run_end_stats_checks(self):
        system = self.make_sanitized_system()
        system.run_epochs(2)
        system.finalize()  # raises on any invariant violation
        for cls in system.stats.classes.values():
            assert cls.reads_unattributed == 0
            assert cls.reads_attributed + cls.reads_unattributed == (
                cls.reads_completed
            )

    def test_unattributed_read_trips_sanitizer(self):
        from repro.sim.engine import SimulationError
        from repro.sim.records import AccessType, MemoryRequest
        from repro.sim.sanitizer import SimSanitizer
        from repro.sim.stats import Stats

        stats = Stats()
        req = MemoryRequest(addr=0, access=AccessType.READ, qos_id=0, core_id=0)
        req.created_at, req.completed_at = 0, 10  # no intermediate stamps
        stats.record_completion(req)
        with pytest.raises(SimulationError, match="partial lifecycle stamps"):
            SimSanitizer().on_run_end(stats)

    def test_bus_exceeding_active_trips_sanitizer(self):
        from repro.sim.engine import SimulationError
        from repro.sim.sanitizer import SimSanitizer
        from repro.sim.stats import Stats

        stats = Stats()
        stats.bus_busy_cycles, stats.mc_active_cycles = 120, 100
        with pytest.raises(SimulationError, match="bus"):
            SimSanitizer().on_run_end(stats)
