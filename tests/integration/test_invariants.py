"""Cross-cutting invariants of full-system runs.

These are the conservation laws a queueing simulator must satisfy no
matter which mechanism is plugged in: bytes in equals bytes accounted, bus
time matches transfers, and the paper's Eq. 5 rate-proportionality holds at
the pacer level.
"""

import pytest

from repro.baselines.source_only import SourceOnlyMechanism
from repro.baselines.target_only import TargetOnlyMechanism
from repro.core.pabst import PabstMechanism
from repro.qos.classes import QoSRegistry
from repro.sim.config import SystemConfig
from repro.sim.mechanism import QoSMechanism
from repro.sim.system import System
from repro.workloads.chaser import ChaserWorkload
from repro.workloads.stream import StreamWorkload

MECHANISMS = [
    QoSMechanism,
    SourceOnlyMechanism,
    TargetOnlyMechanism,
    PabstMechanism,
]


def build(mechanism_factory, workload_factory=StreamWorkload, epochs=30):
    config = SystemConfig.default_experiment(cores=4, num_mcs=2)
    registry = QoSRegistry()
    registry.define_class(0, "hi", weight=3, l3_ways=8)
    registry.define_class(1, "lo", weight=1, l3_ways=8)
    workloads = {}
    for core in range(4):
        registry.assign_core(core, 0 if core < 2 else 1)
        workloads[core] = workload_factory()
    system = System(config, registry, workloads, mechanism=mechanism_factory())
    system.run_epochs(epochs)
    system.finalize()
    return system


@pytest.mark.parametrize("mechanism_factory", MECHANISMS)
class TestConservation:
    def test_bus_time_matches_transferred_bytes(self, mechanism_factory):
        system = build(mechanism_factory)
        stats = system.stats
        transfers = sum(mc.bus.transfers for mc in system.controllers)
        in_flight = sum(mc.inflight for mc in system.controllers)
        line = system.config.line_bytes
        # issued-but-uncompleted transfers are reserved on the bus but not
        # yet accounted to a class; everything else must match exactly
        gap = transfers * line - stats.total_bytes()
        assert 0 <= gap <= in_flight * line
        assert stats.bus_busy_cycles == transfers * system.config.dram.t_burst

    def test_epoch_bytes_sum_to_total(self, mechanism_factory):
        system = build(mechanism_factory)
        epoch_total = sum(
            sum(sample.bytes_by_class.values())
            for sample in system.stats.epochs
        )
        # requests completing after the last epoch close are the remainder
        assert epoch_total <= system.stats.total_bytes()
        assert system.stats.total_bytes() - epoch_total < 64 * 200

    def test_reads_completed_match_controller_accepts(self, mechanism_factory):
        system = build(mechanism_factory)
        accepted = sum(mc.reads_accepted for mc in system.controllers)
        completed = sum(
            cls.reads_completed for cls in system.stats.classes.values()
        )
        in_flight = sum(mc.inflight for mc in system.controllers)
        assert completed <= accepted
        assert accepted - completed <= in_flight + 64

    def test_efficiency_is_a_fraction(self, mechanism_factory):
        system = build(mechanism_factory)
        assert 0.0 < system.stats.memory_efficiency() <= 1.0


class TestProportionality:
    def test_pacer_rates_follow_eq5(self):
        """Pacer target rates stay in weight ratio at every epoch (Eq. 5)."""
        config = SystemConfig.default_experiment(cores=4, num_mcs=2)
        registry = QoSRegistry()
        registry.define_class(0, "hi", weight=3, l3_ways=8)
        registry.define_class(1, "lo", weight=1, l3_ways=8)
        workloads = {}
        for core in range(4):
            registry.assign_core(core, 0 if core < 2 else 1)
            workloads[core] = StreamWorkload()
        mechanism = PabstMechanism()
        system = System(config, registry, workloads, mechanism=mechanism)
        ratios = []

        def probe():
            hi = mechanism.pacers[0].period_cycles
            lo = mechanism.pacers[2].period_cycles
            if hi > 0 and lo > 0:
                ratios.append(lo / hi)
            if system.engine.now < 50_000:
                system.engine.schedule(config.epoch_cycles, probe)

        system.engine.schedule(config.epoch_cycles + 1, probe)
        system.run(60_000)
        assert ratios, "expected sampled periods"
        for ratio in ratios:
            assert ratio == pytest.approx(3.0, rel=0.05)

    def test_latency_sensitive_class_profits_from_arbiter(self):
        def chaser_latency(mechanism_factory):
            system = build(
                mechanism_factory,
                workload_factory=lambda: ChaserWorkload(chains=4),
                epochs=40,
            )
            return system.stats.class_stats(0).mean_read_latency

        baseline = chaser_latency(QoSMechanism)
        pabst = chaser_latency(PabstMechanism)
        assert pabst < baseline
