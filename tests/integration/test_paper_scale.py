"""Smoke test at the paper's full Table III scale.

The experiments run scaled configurations (DESIGN.md §4), but the full
32-core, 4-channel machine must also build and simulate correctly — this
exercises the 8x4 mesh, 4-way controller interleaving, and 20k-cycle
epochs end to end for a short window.
"""

import pytest

from repro.core.pabst import PabstMechanism
from repro.qos.classes import QoSRegistry
from repro.sim.config import SystemConfig
from repro.sim.system import System
from repro.workloads.stream import StreamWorkload


@pytest.fixture(scope="module")
def paper_system():
    config = SystemConfig.paper_32core()
    registry = QoSRegistry()
    registry.define_class(0, "hi", weight=3, l3_ways=8)
    registry.define_class(1, "lo", weight=1, l3_ways=8)
    workloads = {}
    for core in range(32):
        registry.assign_core(core, 0 if core < 16 else 1)
        workloads[core] = StreamWorkload()
    system = System(config, registry, workloads, mechanism=PabstMechanism())
    system.run_epochs(3)
    system.finalize()
    return system


class TestPaperScale:
    def test_machine_dimensions(self, paper_system):
        config = paper_system.config
        assert config.cores == 32
        assert config.num_mcs == 4
        assert paper_system.topology.num_tiles == 32

    def test_all_cores_made_progress(self, paper_system):
        for core in paper_system.cores.values():
            assert core.accesses_completed > 0

    def test_traffic_spread_over_all_controllers(self, paper_system):
        for controller in paper_system.controllers:
            assert controller.reads_accepted > 0

    def test_epochs_closed_at_10us_quantum(self, paper_system):
        assert len(paper_system.stats.epochs) == 3
        assert paper_system.stats.epochs[0].cycles == 20_000

    def test_governors_in_lockstep_at_scale(self, paper_system):
        assert paper_system.mechanism.multipliers_agree()
        assert len(paper_system.mechanism.pacers) == 32
