"""Integration tests for the assembled System."""

import pytest

from repro.core.pabst import PabstMechanism
from repro.qos.classes import QoSRegistry
from repro.sim.config import SystemConfig
from repro.sim.system import System
from repro.workloads.chaser import ChaserWorkload
from repro.workloads.stream import StreamWorkload


def two_class_registry(l3_ways=None):
    registry = QoSRegistry()
    registry.define_class(0, "hi", weight=3, l3_ways=l3_ways)
    registry.define_class(1, "lo", weight=1, l3_ways=l3_ways)
    return registry


def make_system(cores=2, mechanism=None, config=None, workload_factory=None):
    config = config or SystemConfig.small_test()
    registry = two_class_registry()
    factory = workload_factory or StreamWorkload
    workloads = {}
    for core in range(cores):
        registry.assign_core(core, 0 if core < cores // 2 or cores == 1 else 1)
        workloads[core] = factory()
    return System(config, registry, workloads, mechanism=mechanism)


class TestConstruction:
    def test_requires_workloads(self):
        with pytest.raises(ValueError):
            System(SystemConfig.small_test(), two_class_registry(), {})

    def test_rejects_core_out_of_range(self):
        registry = two_class_registry()
        registry.assign_core(5, 0)
        with pytest.raises(ValueError):
            System(
                SystemConfig.small_test(), registry, {5: StreamWorkload()}
            )

    def test_rejects_unassigned_core(self):
        registry = two_class_registry()
        with pytest.raises(KeyError):
            System(
                SystemConfig.small_test(), registry, {0: StreamWorkload()}
            )

    def test_partition_built_from_class_ways(self):
        config = SystemConfig.small_test()
        registry = two_class_registry(l3_ways=8)
        registry.assign_core(0, 0)
        registry.assign_core(1, 1)
        system = System(
            config, registry,
            {0: StreamWorkload(), 1: StreamWorkload()},
        )
        partition = system.hierarchy.l3_partition
        assert partition is not None and partition.is_exclusive()

    def test_no_partition_when_no_ways_configured(self):
        system = make_system()
        assert system.hierarchy.l3_partition is None


class TestRunning:
    def test_run_advances_clock(self):
        system = make_system()
        system.run(1000)
        assert system.engine.now == 1000
        system.run(500)
        assert system.engine.now == 1500

    def test_run_epochs_closes_epoch_samples(self):
        system = make_system()
        system.run_epochs(5)
        assert len(system.stats.epochs) == 5

    def test_run_validation(self):
        with pytest.raises(ValueError):
            make_system().run(0)

    def test_traffic_flows_and_is_accounted(self):
        system = make_system()
        system.run_epochs(10)
        system.finalize()
        assert system.stats.total_bytes() > 0
        assert system.stats.bus_busy_cycles > 0
        for core_id, core in system.cores.items():
            assert core.accesses_completed > 0

    def test_deterministic_across_identical_runs(self):
        def run():
            system = make_system()
            system.run_epochs(10)
            system.finalize()
            return (
                system.stats.total_bytes(),
                system.stats.class_stats(0).reads_completed,
                system.engine.now,
            )

        assert run() == run()

    def test_different_seeds_differ(self):
        def run(seed):
            config = SystemConfig.small_test()
            registry = two_class_registry()
            registry.assign_core(0, 0)
            registry.assign_core(1, 1)
            system = System(
                config, registry,
                {0: ChaserWorkload(), 1: ChaserWorkload()},
                seed=seed,
            )
            system.run_epochs(5)
            return system.stats.total_bytes()

        assert run(1) != run(2)


class TestInvariants:
    def test_mshr_limits_respected(self):
        system = make_system(workload_factory=lambda: StreamWorkload(contexts=64))
        checked = []

        def probe():
            for core_id in system.cores:
                checked.append(
                    system.outstanding_misses(core_id)
                    <= system.config.l2_mshrs
                )
            if system.engine.now < 5000:
                system.engine.schedule(100, probe)

        system.engine.schedule(0, probe)
        system.run(6000)
        assert checked and all(checked)

    def test_no_requests_lost(self):
        """Everything a core issued eventually completes or is in flight."""
        system = make_system()
        system.run_epochs(20)
        issued = sum(core.accesses_issued for core in system.cores.values())
        completed = sum(
            core.accesses_completed for core in system.cores.values()
        )
        outstanding = sum(
            system.outstanding_misses(core) for core in system.cores
        )
        # completed + blocked/in-flight accounts for everything issued
        assert completed <= issued
        assert issued - completed <= outstanding + 64

    def test_blocked_at_mc_introspection(self):
        system = make_system()
        assert all(
            system.blocked_at_mc(mc) == 0
            for mc in range(system.config.num_mcs)
        )


class TestMechanismHooks:
    def test_pabst_hooks_invoked(self):
        mechanism = PabstMechanism()
        system = make_system(mechanism=mechanism)
        system.run_epochs(10)
        pacer = mechanism.pacers[0]
        assert pacer.released > 0
        assert mechanism.multiplier() >= 0

    def test_epoch_samples_carry_saturation(self):
        system = make_system(
            config=SystemConfig.small_test(),
            workload_factory=lambda: StreamWorkload(contexts=32),
        )
        system.run_epochs(10)
        assert any(e.saturated for e in system.stats.epochs)
