"""Sanitizer-enabled integration runs.

The paper-figure experiments must hold every runtime invariant (clock
monotonicity, lifecycle ordering, EDF deadline monotonicity, request
conservation) end to end; and when a lifecycle *is* corrupted, the
sanitizer must abort the run pointing at the offending request.
"""

import pytest

from repro.core.pabst import PabstMechanism
from repro.experiments import fig05_proportional, fig06_work_conserving
from repro.experiments.common import ClassSpec, build_system, sanitized
from repro.sim.engine import SimulationError
from repro.workloads.stream import StreamWorkload


def two_class_system(**kwargs):
    specs = [
        ClassSpec(0, "hi", weight=7, cores=2, workload_factory=StreamWorkload),
        ClassSpec(1, "lo", weight=3, cores=2, workload_factory=StreamWorkload),
    ]
    return build_system(specs, mechanism=PabstMechanism(), **kwargs)


class TestSanitizedFigureRuns:
    def test_fig05_completes_with_zero_violations(self):
        result = fig05_proportional.run(quick=True, sanitize=True)
        assert result.hi_share == pytest.approx(0.7, abs=0.06)

    def test_fig06_completes_with_zero_violations(self):
        result = fig06_work_conserving.run(quick=True, sanitize=True)
        assert result.constant_util_idle > result.constant_util_active

    def test_sanitized_context_manager_covers_experiments(self):
        with sanitized():
            system = two_class_system()
        assert system.engine.sanitizer is not None
        system = two_class_system()
        assert system.engine.sanitizer is None


class TestSanitizerChecksRealTraffic:
    def test_invariants_hold_and_requests_are_conserved(self):
        system = two_class_system(sanitize=True)
        system.run_epochs(3)
        system.finalize()  # runs the conservation check
        sanitizer = system.engine.sanitizer
        assert sanitizer.injected > 0
        assert sanitizer.completed > 0
        assert sanitizer.violations == 0
        assert sanitizer.injected == sanitizer.completed + sanitizer.in_flight

    def test_corrupted_lifecycle_aborts_the_run(self):
        """Deliberately corrupt completions: created_at jumps into the
        future, so completed < created on the next retiring request."""
        system = two_class_system(sanitize=True)
        for controller in system.controllers:
            # _retire is the completion bookkeeping shared by the fused
            # and unfused read-return paths
            original = controller._retire

            def corrupted(req, _original=original):
                req.created_at = 10**12
                _original(req)

            controller._retire = corrupted
        with pytest.raises(SimulationError, match="sanitizer: .*lifecycle"):
            system.run_epochs(3)

    def test_conservation_violation_reported_at_finalize(self):
        system = two_class_system(sanitize=True)
        system.run_epochs(2)
        system.engine.sanitizer.injected += 1  # simulate a dropped request
        with pytest.raises(SimulationError, match="conservation"):
            system.finalize()
