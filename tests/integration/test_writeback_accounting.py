"""Integration tests for the Section V-C writeback accounting policies.

The paper's thought experiment: an L3-resident class (dirty data, no
memory traffic of its own) shares an unpartitioned L3 with a clean read
streamer.  The streamer's fills evict the resident class's dirty lines.
Who pays for the resulting memory writes?

* ``demand`` (the paper's choice): the streamer — it caused the evictions.
* ``owner``: the resident class — it wrote the data.
"""

from dataclasses import replace

import pytest

from repro.core.pabst import PabstMechanism
from repro.qos.classes import QoSRegistry
from repro.sim.config import SystemConfig
from repro.sim.system import System
from repro.workloads.stream import StreamWorkload


def run_scenario(accounting: str, mechanism=None):
    """L3-resident dirty class 0 vs clean streamer class 1, shared L3."""
    config = replace(
        SystemConfig.default_experiment(cores=4, num_mcs=2),
        writeback_accounting=accounting,
    )
    registry = QoSRegistry()
    # no l3_ways: the classes share the cache, the Section V-C situation
    registry.define_class(0, "l3res", weight=1)
    registry.define_class(1, "stream", weight=1)
    workloads = {}
    for core in range(2):
        registry.assign_core(core, 0)
        # dirty resident data with a reuse distance longer than the
        # streamer's cache-churn period, so the streamer's fills actually
        # evict it (with a hotter set, true LRU would protect it forever)
        workloads[core] = StreamWorkload(
            working_set_bytes=192 << 10, stride_bytes=64, write_fraction=1.0,
            gap=150, name="l3res",
        )
    for core in range(2, 4):
        registry.assign_core(core, 1)
        workloads[core] = StreamWorkload()  # clean DDR read stream
    system = System(config, registry, workloads, mechanism=mechanism)
    system.run_epochs(100)
    system.finalize()
    return system


class TestAttribution:
    @pytest.fixture(scope="class")
    def demand_run(self):
        return run_scenario("demand")

    @pytest.fixture(scope="class")
    def owner_run(self):
        return run_scenario("owner")

    def test_writebacks_happen_in_both(self, demand_run, owner_run):
        for system in (demand_run, owner_run):
            written = sum(
                cls.bytes_written for cls in system.stats.classes.values()
            )
            assert written > 0

    def test_demand_charges_the_streamer(self, demand_run):
        stats = demand_run.stats
        # the clean streamer pays for the cross-class evictions it causes
        assert stats.class_stats(1).bytes_written > 0

    def test_owner_charges_the_resident_class(self, owner_run):
        stats = owner_run.stats
        # the clean streamer never wrote anything, so under owner
        # accounting it pays for nothing
        assert stats.class_stats(1).bytes_written == 0
        assert stats.class_stats(0).bytes_written > 0

    def test_policies_shift_attribution_not_traffic(self, demand_run, owner_run):
        demand_total = sum(
            cls.bytes_written for cls in demand_run.stats.classes.values()
        )
        owner_total = sum(
            cls.bytes_written for cls in owner_run.stats.classes.values()
        )
        # accounting changes who pays, not (materially) how much is written
        assert owner_total == pytest.approx(demand_total, rel=0.35)


class TestPacerCharging:
    def test_owner_accounting_charges_owner_pacers(self):
        mechanism = PabstMechanism()
        run_scenario("owner", mechanism=mechanism)
        # resident class pacers (cores 0-1) received direct writeback charges
        resident = mechanism.pacers[0].released + mechanism.pacers[1].released
        assert resident > 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            replace(SystemConfig.small_test(), writeback_accounting="split")
