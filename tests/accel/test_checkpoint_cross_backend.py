"""Checkpoints are backend-neutral: save under one backend, restore
under the other, byte-identical report either way.

The snapshot pickles the system graph through the engine's explicit
state tuple, and the engine class is re-resolved at unpickle time from
the then-active backend — so a warm-up simulated by the compiled core
forks measurement runs on the pure engine and vice versa.
"""

from repro.runner.spec import RunSpec
from repro.runner.worker import execute_spec
from repro.sim.engine import Engine


def _spec(backend: str) -> RunSpec:
    return RunSpec(figure="fig05", quick=True, seed=0, backend=backend)


def test_checkpoint_round_trips_between_backends(c_backend, tmp_path, monkeypatch):
    import repro.runner.checkpoint as ckpt

    cold = execute_spec(_spec("pure"))
    assert cold["ok"]

    # first warm run under the compiled backend: simulates the warm-up
    # on the C engine and saves the snapshot
    saved = execute_spec(_spec("c"), warm_start_dir=str(tmp_path))
    assert saved["ok"]
    assert saved["report"] == cold["report"]
    assert len(ckpt.CheckpointStore(tmp_path)) == 1

    restored_engines: list[type] = []
    original_restore = ckpt.restore_system

    def recording_restore(checkpoint):
        system = original_restore(checkpoint)
        restored_engines.append(type(system.engine))
        return system

    monkeypatch.setattr(ckpt, "restore_system", recording_restore)

    # restore the compiled-saved snapshot under pure
    warm_pure = execute_spec(_spec("pure"), warm_start_dir=str(tmp_path))
    assert warm_pure["ok"]
    assert restored_engines == [Engine]
    assert warm_pure["report"] == cold["report"]

    # and the same snapshot under the compiled backend again
    restored_engines.clear()
    warm_c = execute_spec(_spec("c"), warm_start_dir=str(tmp_path))
    assert warm_c["ok"]
    assert [cls.__name__ for cls in restored_engines] == ["CEngine"]
    assert warm_c["report"] == cold["report"]
