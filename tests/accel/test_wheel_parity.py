"""Parity properties: the compiled wheel against the pure reference.

Reuses the heap-reference ``Driver`` machinery from the pure wheel's
property test: random ``schedule``/``post``/``post_at``/``post_chain_at``
/``cancel``/``run_until`` interleavings must produce identical dispatch
logs, clocks, and live-event counts on the compiled engine — including
the cancel-after-dispatch edge and a mid-run marshal from the compiled
engine to the pure one (checkpoints are backend-neutral).

``pickle`` here crosses the same boundary checkpoints do; the tests are
outside lint scope (PERF003 confines pickle within ``src/repro``).
"""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import accel
from repro.sim.engine import Engine, SimulationError, _WHEEL_SIZE

from tests.sim.test_wheel_property import _OPS, _SPAN, Driver, ReferenceEngine


def _c_engine(seed: int = 0):
    with accel.backend("c"):
        return accel.make_engine(seed)


@settings(max_examples=50, deadline=None)
@given(ops=st.lists(_OPS, min_size=1, max_size=60))
def test_c_wheel_matches_reference_heap(c_backend, ops):
    wheel = Driver(_c_engine())
    reference = Driver(ReferenceEngine())
    for op in ops:
        wheel.apply(op)
        reference.apply(op)
        assert wheel.host.live_events == reference.host.live_events
    final = max(wheel.host.now + 4 * _SPAN, 8 * _SPAN)
    wheel.host.run_until(final)
    reference.host.run_until(final)
    assert wheel.log == reference.log
    assert wheel.host.now == reference.host.now
    assert wheel.host.live_events == reference.host.live_events


@settings(max_examples=25, deadline=None)
@given(
    ops=st.lists(_OPS, min_size=1, max_size=60),
    split=st.integers(min_value=0, max_value=60),
)
def test_c_wheel_marshals_to_pure_mid_run(c_backend, ops, split):
    """Pickle a compiled engine mid-flight, restore pure, finish identically."""
    compiled = Driver(_c_engine())
    reference = Driver(ReferenceEngine())
    for op in ops[:split]:
        compiled.apply(op)
        reference.apply(op)
    with accel.backend("pure"):
        restored = pickle.loads(pickle.dumps(compiled))
    assert type(restored.host) is Engine
    assert restored.host.now == compiled.host.now
    assert restored.host.live_events == compiled.host.live_events
    for op in ops[split:]:
        compiled.apply(op)
        restored.apply(op)
        reference.apply(op)
        assert (
            compiled.host.live_events
            == restored.host.live_events
            == reference.host.live_events
        )
    final = max(compiled.host.now + 4 * _SPAN, 8 * _SPAN)
    for driver in (compiled, restored, reference):
        driver.host.run_until(final)
    assert compiled.log == restored.log == reference.log
    assert compiled.host.now == restored.host.now


def test_cancel_after_dispatch_is_settled_once(c_backend):
    engine = _c_engine()
    fired = []
    event = engine.schedule(3, fired.append, "c")
    engine.run_until(10)
    assert fired == ["c"]
    assert engine.live_events == 0
    event.cancel()
    assert engine.live_events == 0


@pytest.mark.parametrize("max_events", [10, 10_000])
def test_run_guard_parity(c_backend, max_events):
    """``run(max_events=...)`` trips (or not) identically on both backends."""
    outcomes = []
    for name in ("pure", "c"):
        with accel.backend(name):
            engine = accel.make_engine()

        def tick(remaining, engine=engine):
            if remaining:
                engine.post(3, tick, remaining - 1)

        engine.post(0, tick, 50)
        # overflow entries too, so the guard crosses a refill boundary
        engine.post_at(int(_WHEEL_SIZE * 1.5), tick, 2)
        error = None
        try:
            count = engine.run(max_events=max_events)
        except SimulationError as exc:
            count, error = None, str(exc)
        outcomes.append(
            (count, error, engine.now, engine.live_events, engine.dispatched)
        )
    assert outcomes[0] == outcomes[1]
    if max_events == 10:
        assert "max_events" in (outcomes[0][1] or "")
