"""Native fast-path coverage, counters, and forced-miss parity.

The compiled wheel core recognizes a closed set of hot callbacks and
runs them in C.  These tests pin the three contracts that make that
safe to ship: coverage (quick fig05 dispatches ≥90% natively), counter
and trace parity between the backends, and graceful degradation — a
subclassed component fails the exact-class guard, falls back to the
Python callback, and the simulation stays byte-identical anyway.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import accel
from repro.core.pabst import PabstMechanism
from repro.core.pacer import Pacer
from repro.dram.controller import MemoryController
from repro.qos.classes import QoSRegistry
from repro.sim.config import SystemConfig
from repro.sim.system import System
from repro.workloads.stream import StreamWorkload


def _payload(figure: str, backend: str) -> dict:
    return {
        "figure": figure,
        "quick": True,
        "backend": backend,
        "cell": {},
        "seed": 0,
        "overrides": [],
    }


def _build_system(system_cls=System, epochs: int = 4) -> System:
    config = SystemConfig.default_experiment(cores=4, num_mcs=2)
    registry = QoSRegistry()
    registry.define_class(0, "hi", weight=3, l3_ways=8)
    registry.define_class(1, "lo", weight=1, l3_ways=8)
    workloads = {}
    for core in range(4):
        registry.assign_core(core, 0 if core < 2 else 1)
        workloads[core] = StreamWorkload()
    system = system_cls(config, registry, workloads, mechanism=PabstMechanism())
    system.run_epochs(epochs)
    system.finalize()
    return system


# ----------------------------------------------------------------------
# coverage + byte identity on the quick figure runs
# ----------------------------------------------------------------------
def test_fig05_quick_byte_identical_with_high_hit_rate(c_backend):
    from repro.runner.worker import execute_payload

    c_out = execute_payload(_payload("fig05", "c"))
    pure_out = execute_payload(_payload("fig05", "pure"))
    assert c_out["ok"] and pure_out["ok"]
    assert c_out["report"] == pure_out["report"]
    # the pure backend moves no native counters, so it reports nothing
    assert "fastpath" not in pure_out
    fastpath = c_out["fastpath"]
    assert fastpath["hit_rate"] >= 0.90
    # the dominant dispatch kinds and the synchronous mirrors all fire
    kinds = fastpath["kinds"]
    assert kinds["mc_run_pass"] > 0
    assert kinds["pacer_release_head"] > 0
    assert kinds["sys_pump_mc"] > 0
    assert kinds["mc_policy_pick"] > 0
    assert kinds["mc_policy_on_accept"] > 0
    assert kinds["sys_on_mc_space"] > 0


# ----------------------------------------------------------------------
# obs registry parity
# ----------------------------------------------------------------------
def test_obs_registry_parity_between_backends(c_backend):
    snaps = {}
    for name in ("pure", "c"):
        with accel.backend(name):
            system = _build_system()
        snap = system.obs.snapshot()
        accel_counters = {
            key: value
            for key, value in snap["counters"].items()
            if key.startswith("accel.")
        }
        rest = {
            section: {
                key: value
                for key, value in values.items()
                if not key.startswith("accel.")
            }
            for section, values in snap.items()
        }
        snaps[name] = (accel_counters, rest)
    # identical registries modulo the backend-diagnostic accel.* counters
    assert snaps["pure"][1] == snaps["c"][1]
    assert snaps["pure"][0]["accel.fastpath_hits"] == 0
    assert snaps["pure"][0]["accel.fastpath_misses"] == 0
    assert snaps["c"][0]["accel.fastpath_hits"] > 0


# ----------------------------------------------------------------------
# Chrome-trace parity on quick fig05
# ----------------------------------------------------------------------
def _normalized_trace(document: dict) -> str:
    """Canonical JSON with request ids rebased to the run's first id.

    Request ids are process-global and never reset, so two figure runs
    in one process are offset by a constant; the per-run *sequence* is
    what determinism guarantees.
    """
    events = document["traceEvents"]
    req_ids = [
        event["args"]["req"]
        for event in events
        if "req" in event.get("args", {})
    ]
    base = min(req_ids, default=0)
    for event in events:
        if "req" in event.get("args", {}):
            event["args"]["req"] -= base
    return json.dumps(document, sort_keys=True)


def test_fig05_chrome_trace_parity(c_backend):
    from repro.experiments.common import traced
    from repro.obs.trace import RequestTracer
    from repro.runner.worker import figure_module

    module = figure_module("fig05")
    documents = {}
    for name in ("pure", "c"):
        tracer = RequestTracer(capacity=1 << 18)
        with accel.backend(name), traced(tracer):
            module.run(quick=True, seed=0)
        documents[name] = _normalized_trace(tracer.to_chrome_trace())
    assert documents["pure"] == documents["c"]


# ----------------------------------------------------------------------
# forced misses: subclassed components decline the exact-class guards
# ----------------------------------------------------------------------
class _ShadowSystem(System):
    pass


class _ShadowController(MemoryController):
    pass


class _ShadowPacer(Pacer):
    pass


def _comparable(system: System) -> tuple:
    snap = system.obs.snapshot()
    rest = {
        section: {
            key: value
            for key, value in values.items()
            if not key.startswith("accel.")
        }
        for section, values in snap.items()
    }
    return (system.engine.now, system.engine.dispatched, rest)


@settings(max_examples=6, deadline=None)
@given(
    sub_system=st.booleans(),
    sub_controller=st.booleans(),
    sub_pacer=st.booleans(),
    epochs=st.integers(min_value=2, max_value=4),
)
def test_forced_misses_preserve_dispatch_parity(
    c_backend, sub_system, sub_controller, sub_pacer, epochs
):
    """Subclasses fail the exact-type guards; the run must not notice.

    Every declined dispatch falls back to the Python callback, so the
    clock, the dispatch count, and every registered counter must match
    the pure run exactly — the fast path only ever changes wall time.
    """
    import repro.core.pabst as pabst_mod
    import repro.sim.system as system_mod

    patches = []
    if sub_controller:
        patches.append((system_mod, "MemoryController", _ShadowController))
    if sub_pacer:
        patches.append((pabst_mod, "Pacer", _ShadowPacer))
    originals = [(mod, name, getattr(mod, name)) for mod, name, _ in patches]
    for mod, name, cls in patches:
        setattr(mod, name, cls)
    system_cls = _ShadowSystem if sub_system else System
    try:
        before = accel.fastpath_stats()
        with accel.backend("pure"):
            pure = _build_system(system_cls=system_cls, epochs=epochs)
        assert accel.fastpath_stats() == before
        with accel.backend("c"):
            compiled = _build_system(system_cls=system_cls, epochs=epochs)
        after = accel.fastpath_stats()
    finally:
        for mod, name, cls in originals:
            setattr(mod, name, cls)
    assert _comparable(pure) == _comparable(compiled)
    delta_misses = after["misses"] - before["misses"]
    delta_hits = after["hits"] - before["hits"]
    assert delta_hits + delta_misses > 0
    if sub_system or sub_controller or sub_pacer:
        # at least one registered kind declined on the type guard
        assert delta_misses > 0
    else:
        assert delta_hits > 0
