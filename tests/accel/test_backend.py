"""Backend registry semantics: selection, fallback, and accounting."""

import pytest

from repro import accel
from repro.accel import build as build_mod
from repro.sim.engine import Engine


def test_unknown_backend_name_is_rejected():
    with pytest.raises(ValueError, match="unknown backend"):
        accel.resolve_backend("fortran")


def test_pure_resolves_without_loading_anything():
    assert accel.resolve_backend("pure") == "pure"


def test_auto_degrades_to_pure_without_a_prebuilt_artifact(
    monkeypatch, tmp_path
):
    # Simulate a fresh process in a tree with no built extension: auto
    # must fall back to pure without attempting a compile.
    monkeypatch.setattr(accel, "_core", None)
    monkeypatch.setattr(
        build_mod, "artifact_path", lambda cache_dir=None: tmp_path / "no.so"
    )
    assert accel.resolve_backend("auto") == "pure"


def test_backend_context_restores_previous_selection(c_backend):
    before = accel.active_backend()
    with accel.backend("c"):
        assert accel.active_backend() == "c"
        with accel.backend("pure"):
            assert accel.active_backend() == "pure"
        assert accel.active_backend() == "c"
    assert accel.active_backend() == before


def test_engine_class_follows_selection(c_backend):
    with accel.backend("pure"):
        assert accel.engine_class() is Engine
    with accel.backend("c"):
        cls = accel.engine_class()
        assert cls is not Engine
        assert cls.__name__ == "CEngine"
        # the compiled engine presents the same scheduling API
        engine = accel.make_engine(seed=7)
        assert engine.now == 0
        assert engine.live_events == 0


def test_c_core_counts_dispatches_even_after_switching_back(c_backend):
    with accel.backend("c"):
        engine = accel.make_engine()
    before = accel.core_dispatched_total()
    fired = []
    engine.post(5, fired.append, 1)
    # engine keeps its backend after selection reverts to pure
    engine.run_until(10)
    assert fired == [1]
    assert accel.core_dispatched_total() == before + 1


def test_controller_kernels_none_under_pure(c_backend):
    with accel.backend("pure"):
        assert accel.controller_kernels() is None
    with accel.backend("c"):
        assert accel.controller_kernels() is not None


def test_build_is_idempotent(c_backend):
    # the artifact already exists (the session fixture built it); a
    # second build must return the same path without recompiling
    path = build_mod.build()
    assert path.exists()
    assert build_mod.build() == path
