"""Shared fixture: the compiled backend, or a skip when it cannot build.

The accel tests exercise the C extension against the pure reference, so
they need a working toolchain.  A tree without one (no gcc, no
Python.h) must still pass tier-1 — that *is* the graceful-degradation
contract — so the whole directory skips instead of failing.
"""

import pytest

from repro import accel


@pytest.fixture(scope="session")
def c_backend() -> str:
    try:
        return accel.resolve_backend("c")
    except accel.AccelUnavailable as exc:
        pytest.skip(f"compiled backend unavailable: {exc}")
