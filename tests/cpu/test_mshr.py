"""Unit and property tests for the MSHR file."""

import pytest
from hypothesis import given, strategies as st

from repro.cpu.mshr import AllocationResult, MshrFile


class TestAllocation:
    def test_new_entry(self):
        mshrs = MshrFile(2)
        assert mshrs.allocate(0x100, lambda: None) is AllocationResult.NEW
        assert mshrs.outstanding == 1
        assert mshrs.available == 1

    def test_merge_same_line(self):
        mshrs = MshrFile(2)
        mshrs.allocate(0x100, lambda: None)
        assert mshrs.allocate(0x100, lambda: None) is AllocationResult.MERGED
        assert mshrs.outstanding == 1  # merged, no new entry

    def test_full(self):
        mshrs = MshrFile(1)
        mshrs.allocate(0x100, lambda: None)
        assert mshrs.allocate(0x200, lambda: None) is AllocationResult.FULL

    def test_merge_allowed_even_when_full(self):
        mshrs = MshrFile(1)
        mshrs.allocate(0x100, lambda: None)
        assert mshrs.allocate(0x100, lambda: None) is AllocationResult.MERGED

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            MshrFile(0)


class TestCompletion:
    def test_complete_returns_all_waiters_in_order(self):
        mshrs = MshrFile(4)
        calls = []
        mshrs.allocate(0x100, lambda: calls.append("a"))
        mshrs.allocate(0x100, lambda: calls.append("b"))
        for callback in mshrs.complete(0x100):
            callback()
        assert calls == ["a", "b"]
        assert mshrs.outstanding == 0

    def test_complete_unknown_line_raises(self):
        with pytest.raises(KeyError):
            MshrFile(1).complete(0x100)

    def test_complete_frees_capacity(self):
        mshrs = MshrFile(1)
        mshrs.allocate(0x100, lambda: None)
        mshrs.complete(0x100)
        assert mshrs.allocate(0x200, lambda: None) is AllocationResult.NEW

    def test_is_outstanding(self):
        mshrs = MshrFile(1)
        assert not mshrs.is_outstanding(0x100)
        mshrs.allocate(0x100, lambda: None)
        assert mshrs.is_outstanding(0x100)


@given(
    capacity=st.integers(min_value=1, max_value=8),
    lines=st.lists(st.integers(min_value=0, max_value=12), min_size=1, max_size=64),
)
def test_property_outstanding_never_exceeds_capacity(capacity, lines):
    mshrs = MshrFile(capacity)
    outstanding = set()
    for line in lines:
        result = mshrs.allocate(line, lambda: None)
        if result is AllocationResult.NEW:
            outstanding.add(line)
        elif result is AllocationResult.MERGED:
            assert line in outstanding
        else:
            assert len(outstanding) == capacity
        assert mshrs.outstanding <= capacity
        # occasionally retire the oldest entry
        if len(outstanding) == capacity:
            victim = next(iter(outstanding))
            mshrs.complete(victim)
            outstanding.discard(victim)
