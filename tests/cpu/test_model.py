"""Unit tests for the core model's context state machine."""

from repro.cpu.model import Core
from repro.sim.engine import Engine
from repro.workloads.base import Access, Workload


class ScriptedWorkload(Workload):
    """Deterministic per-context scripts for driving a core in tests."""

    def __init__(self, scripts):
        super().__init__()
        self.name = "scripted"
        self.contexts = len(scripts)
        self._scripts = [list(s) for s in scripts]
        self.completions = []

    def next_access(self, context):
        if not self._scripts[context]:
            return None
        return self._scripts[context].pop(0)

    def on_complete(self, context, access, now):
        self.completions.append((context, access.addr, now))


def make_core(scripts, latency=10):
    engine = Engine()

    def access_fn(core, access, done):
        engine.schedule(latency, done)

    recorded = []

    def on_instructions(qos_id, count):
        recorded.append((qos_id, count))

    core = Core(
        engine=engine,
        core_id=0,
        qos_id=7,
        workload=ScriptedWorkload(scripts),
        access_fn=access_fn,
        on_instructions=on_instructions,
    )
    return engine, core, recorded


class TestContexts:
    def test_single_context_runs_script_sequentially(self):
        script = [Access(addr=i * 64, gap=5, instructions=2) for i in range(3)]
        engine, core, recorded = make_core([script])
        core.start()
        engine.run()
        assert core.accesses_completed == 3
        assert core.instructions == 6
        assert core.done
        # each access: 5 gap + 10 latency
        assert engine.now == 3 * 15

    def test_contexts_overlap(self):
        scripts = [[Access(addr=0, gap=0)], [Access(addr=64, gap=0)]]
        engine, core, _ = make_core(scripts, latency=10)
        core.start()
        engine.run()
        assert engine.now == 10  # both contexts in flight concurrently

    def test_gap_defers_issue(self):
        engine, core, _ = make_core([[Access(addr=0, gap=25)]], latency=10)
        core.start()
        engine.run()
        assert engine.now == 35

    def test_instruction_callbacks_carry_qos(self):
        engine, core, recorded = make_core([[Access(addr=0, instructions=9)]])
        core.start()
        engine.run()
        assert recorded == [(7, 9)]

    def test_zero_instruction_access_not_reported(self):
        engine, core, recorded = make_core([[Access(addr=0, instructions=0)]])
        core.start()
        engine.run()
        assert recorded == []
        assert core.accesses_completed == 1

    def test_on_complete_hook_sees_completion_time(self):
        script = [Access(addr=0x40, gap=0)]
        engine, core, _ = make_core([script], latency=10)
        core.start()
        engine.run()
        assert core.workload.completions == [(0, 0x40, 10)]

    def test_start_is_idempotent(self):
        engine, core, _ = make_core([[Access(addr=0)]])
        core.start()
        core.start()
        engine.run()
        assert core.accesses_completed == 1

    def test_done_only_after_all_contexts_retire(self):
        scripts = [[Access(addr=0)], [Access(addr=64), Access(addr=128)]]
        engine, core, _ = make_core(scripts)
        core.start()
        assert not core.done
        engine.run()
        assert core.done
