"""Unit and property tests for the paper's metrics."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis.metrics import (
    allocation_error,
    bandwidth_shares,
    percentile,
    share_error_per_class,
    weighted_slowdown,
)


class TestBandwidthShares:
    def test_normalizes(self):
        shares = bandwidth_shares({0: 300, 1: 100})
        assert shares == {0: 0.75, 1: 0.25}

    def test_empty_traffic_gives_zero_shares(self):
        assert bandwidth_shares({0: 0, 1: 0}) == {0: 0.0, 1: 0.0}


class TestAllocationError:
    def test_exact_allocation_is_zero_error(self):
        assert allocation_error({0: 300, 1: 100}, {0: 3, 1: 1}) == pytest.approx(0.0)

    def test_starved_class_is_full_error(self):
        assert allocation_error({0: 400, 1: 0}, {0: 1, 1: 1}) == pytest.approx(1.0)

    def test_equal_split_under_3to1_weights(self):
        # lo class gets 0.5 instead of 0.25 -> 100% over-entitlement
        error = allocation_error({0: 100, 1: 100}, {0: 3, 1: 1})
        assert error == pytest.approx(1.0)

    def test_mismatched_classes_rejected(self):
        with pytest.raises(ValueError):
            allocation_error({0: 1}, {0: 1, 1: 1})

    def test_signed_errors(self):
        errors = share_error_per_class({0: 100, 1: 100}, {0: 3, 1: 1})
        assert errors[0] < 0 < errors[1]


class TestWeightedSlowdown:
    def test_no_interference_is_one(self):
        assert weighted_slowdown([1.0, 2.0], [1.0, 2.0]) == pytest.approx(1.0)

    def test_halved_ipc_is_two(self):
        assert weighted_slowdown([1.0, 1.0], [0.5, 0.5]) == pytest.approx(2.0)

    def test_harmonic_combination(self):
        # one copy unharmed, one at half speed
        value = weighted_slowdown([1.0, 1.0], [1.0, 0.5])
        assert value == pytest.approx(2 / 1.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            weighted_slowdown([], [])
        with pytest.raises(ValueError):
            weighted_slowdown([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            weighted_slowdown([0.0], [1.0])
        with pytest.raises(ValueError):
            weighted_slowdown([1.0], [0.0])


class TestPercentile:
    def test_median(self):
        assert percentile([1, 2, 3, 4, 5], 50) == 3.0

    def test_empty_is_zero(self):
        assert percentile([], 99) == 0.0

    def test_bounds_checked(self):
        with pytest.raises(ValueError):
            percentile([1], 101)
        with pytest.raises(ValueError):
            percentile([1], -0.5)

    def test_q0_is_minimum_and_q100_is_maximum(self):
        samples = [7.0, 3.0, 9.0, 1.0]
        assert percentile(samples, 0) == 1.0
        assert percentile(samples, 100) == 9.0

    def test_single_sample_for_every_q(self):
        for q in (0, 25, 50, 99.9, 100):
            assert percentile([42.0], q) == 42.0

    def test_linear_interpolation_between_ranks(self):
        # rank(90) over 5 samples = 3.6 -> 0.4*4 + 0.6*5
        assert percentile([1, 2, 3, 4, 5], 90) == pytest.approx(4.6)

    def test_unsorted_input(self):
        assert percentile([5, 1, 4, 2, 3], 50) == 3.0


# cross-check the hand-rolled index arithmetic against the standard
# library's inclusive quantiles (the same method="linear" definition
# numpy.percentile uses); this pins the off-by-one the old version had
# at the upper tail
@given(
    samples=st.lists(
        st.floats(
            min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
        ),
        min_size=2,
        max_size=50,
    ),
    q=st.integers(min_value=1, max_value=99),
)
def test_property_percentile_matches_statistics_quantiles(samples, q):
    import statistics

    cuts = statistics.quantiles(samples, n=100, method="inclusive")
    assert percentile(samples, q) == pytest.approx(cuts[q - 1], abs=1e-6)


@given(
    samples=st.lists(
        st.floats(
            min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
        ),
        min_size=1,
        max_size=50,
    ),
    q=st.floats(min_value=0, max_value=100, allow_nan=False),
)
def test_property_percentile_bounded_and_monotone_in_q(samples, q):
    value = percentile(samples, q)
    assert min(samples) <= value <= max(samples)
    if q < 100:
        assert value <= percentile(samples, 100)
    if q > 0:
        assert percentile(samples, 0) <= value


@given(
    counts=st.dictionaries(
        st.integers(min_value=0, max_value=5),
        st.integers(min_value=0, max_value=10_000),
        min_size=1,
        max_size=6,
    )
)
def test_property_shares_sum_to_one_or_zero(counts):
    shares = bandwidth_shares(counts)
    total = sum(shares.values())
    assert total == pytest.approx(1.0) or total == 0.0


@given(
    weights=st.lists(st.integers(min_value=1, max_value=16), min_size=1, max_size=5),
    scale=st.integers(min_value=1, max_value=1000),
)
def test_property_perfect_allocation_has_zero_error(weights, scale):
    table = {index: weight for index, weight in enumerate(weights)}
    observed = {index: weight * scale for index, weight in table.items()}
    assert allocation_error(observed, table) == pytest.approx(0.0, abs=1e-9)
