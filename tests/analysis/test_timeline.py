"""Unit tests for bandwidth timelines."""

import pytest

from repro.analysis.timeline import BandwidthTimeline
from repro.sim.stats import EpochSample


def sample(epoch, start, end, by_class, saturated=False, multiplier=-1):
    return EpochSample(
        epoch=epoch, start_cycle=start, end_cycle=end,
        bytes_by_class=by_class, saturated=saturated, multiplier=multiplier,
    )


def make_timeline():
    epochs = [
        sample(0, 0, 100, {0: 400, 1: 400}, saturated=True, multiplier=4),
        sample(1, 100, 200, {0: 600, 1: 200}, multiplier=8),
        sample(2, 200, 300, {0: 750, 1: 250}, multiplier=8),
    ]
    return BandwidthTimeline(epochs, peak_bytes_per_cycle=16.0)


class TestSeries:
    def test_utilization_series(self):
        timeline = make_timeline()
        assert timeline.utilization_series(0) == [
            pytest.approx(4 / 16), pytest.approx(6 / 16), pytest.approx(7.5 / 16)
        ]

    def test_share_series(self):
        timeline = make_timeline()
        assert timeline.share_series(0) == [
            pytest.approx(0.5), pytest.approx(0.75), pytest.approx(0.75)
        ]

    def test_total_utilization_series(self):
        timeline = make_timeline()
        assert timeline.total_utilization_series()[0] == pytest.approx(0.5)

    def test_sat_and_multiplier_series(self):
        timeline = make_timeline()
        assert timeline.saturation_series() == [True, False, False]
        assert timeline.multiplier_series() == [4, 8, 8]

    def test_len(self):
        assert len(make_timeline()) == 3


class TestWindows:
    def test_window_summary(self):
        summary = make_timeline().window(0, start=1)
        assert summary.mean_share == pytest.approx(0.75)
        assert summary.min_share == pytest.approx(0.75)
        assert summary.mean_utilization == pytest.approx((6 / 16 + 7.5 / 16) / 2)

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            make_timeline().window(0, start=99)

    def test_steady_share_skips_warmup(self):
        timeline = make_timeline()
        assert timeline.steady_share(0, warmup_epochs=1) == pytest.approx(0.75)
        assert timeline.steady_share(0, warmup_epochs=0) == pytest.approx(
            1750 / 2600
        )

    def test_steady_bytes(self):
        assert make_timeline().steady_bytes(1) == {0: 1350, 1: 450}

    def test_missing_class_is_zero(self):
        timeline = make_timeline()
        assert timeline.steady_share(9, warmup_epochs=0) == 0.0
        assert all(v == 0.0 for v in timeline.utilization_series(9))

    def test_peak_validation(self):
        with pytest.raises(ValueError):
            BandwidthTimeline([], peak_bytes_per_cycle=0)
