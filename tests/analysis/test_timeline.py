"""Unit tests for bandwidth timelines."""

import pytest

from repro.analysis.timeline import BandwidthTimeline
from repro.sim.stats import EpochSample


def sample(epoch, start, end, by_class, saturated=False, multiplier=-1):
    return EpochSample(
        epoch=epoch, start_cycle=start, end_cycle=end,
        bytes_by_class=by_class, saturated=saturated, multiplier=multiplier,
    )


def make_timeline():
    epochs = [
        sample(0, 0, 100, {0: 400, 1: 400}, saturated=True, multiplier=4),
        sample(1, 100, 200, {0: 600, 1: 200}, multiplier=8),
        sample(2, 200, 300, {0: 750, 1: 250}, multiplier=8),
    ]
    return BandwidthTimeline(epochs, peak_bytes_per_cycle=16.0)


class TestSeries:
    def test_utilization_series(self):
        timeline = make_timeline()
        assert timeline.utilization_series(0) == [
            pytest.approx(4 / 16), pytest.approx(6 / 16), pytest.approx(7.5 / 16)
        ]

    def test_share_series(self):
        timeline = make_timeline()
        assert timeline.share_series(0) == [
            pytest.approx(0.5), pytest.approx(0.75), pytest.approx(0.75)
        ]

    def test_total_utilization_series(self):
        timeline = make_timeline()
        assert timeline.total_utilization_series()[0] == pytest.approx(0.5)

    def test_sat_and_multiplier_series(self):
        timeline = make_timeline()
        assert timeline.saturation_series() == [True, False, False]
        assert timeline.multiplier_series() == [4, 8, 8]

    def test_len(self):
        assert len(make_timeline()) == 3


class TestWindows:
    def test_window_summary(self):
        summary = make_timeline().window(0, start=1)
        assert summary.mean_share == pytest.approx(0.75)
        assert summary.min_share == pytest.approx(0.75)
        assert summary.mean_utilization == pytest.approx((6 / 16 + 7.5 / 16) / 2)

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            make_timeline().window(0, start=99)

    def test_steady_share_skips_warmup(self):
        timeline = make_timeline()
        assert timeline.steady_share(0, warmup_epochs=1) == pytest.approx(0.75)
        assert timeline.steady_share(0, warmup_epochs=0) == pytest.approx(
            1750 / 2600
        )

    def test_steady_bytes(self):
        assert make_timeline().steady_bytes(1) == {0: 1350, 1: 450}

    def test_missing_class_is_zero(self):
        timeline = make_timeline()
        assert timeline.steady_share(9, warmup_epochs=0) == 0.0
        assert all(v == 0.0 for v in timeline.utilization_series(9))

    def test_peak_validation(self):
        with pytest.raises(ValueError):
            BandwidthTimeline([], peak_bytes_per_cycle=0)


class TestZeroLengthFinalEpoch:
    """A run ending exactly on an epoch boundary appends a cycles==0 sample.

    ``Stats.close_epoch`` produces it; every timeline query and the
    report renderer downstream must survive it without dividing by zero
    or leaking the ``-1`` multiplier sentinel into report text.
    """

    def make_timeline_with_empty_tail(self):
        from repro.sim.stats import Stats

        stats = Stats()
        stats._epoch_bytes = {0: 800, 1: 200}
        stats.close_epoch(now=100, saturated=True, multiplier=4)
        final = stats.close_epoch(now=100)  # zero-length tail
        assert final.cycles == 0
        return BandwidthTimeline(stats.epochs, peak_bytes_per_cycle=16.0)

    def test_series_render_zero_not_nan(self):
        timeline = self.make_timeline_with_empty_tail()
        assert timeline.utilization_series(0) == [0.5, 0.0]
        assert timeline.total_utilization_series() == [0.625, 0.0]
        assert timeline.share_series(0) == [0.8, 0.0]

    def test_window_over_empty_tail(self):
        timeline = self.make_timeline_with_empty_tail()
        summary = timeline.window(0, 0)
        assert summary.min_share == 0.0
        assert summary.max_share == 0.8

    def test_report_text_has_no_sentinel(self):
        from repro.analysis.report import format_series

        timeline = self.make_timeline_with_empty_tail()
        text = "\n".join(
            format_series(label, series)
            for label, series in (
                ("hi", timeline.utilization_series(0)),
                ("lo", timeline.utilization_series(1)),
                ("total", timeline.total_utilization_series()),
            )
        )
        assert "-1" not in text
        assert "nan" not in text and "inf" not in text

    def test_multiplier_sentinel_stays_out_of_stream_records(self):
        from repro.obs.streams import epoch_record

        timeline = self.make_timeline_with_empty_tail()
        records = [epoch_record(sample) for sample in timeline.epochs]
        assert records[0]["multiplier"] == 4
        assert records[1]["multiplier"] is None
        assert records[1]["bandwidth_by_class"] == {}
