"""Tests for latency attribution."""

import pytest

from repro.analysis.attribution import (
    attribute_latency,
    attribution_table,
)
from repro.baselines.source_only import SourceOnlyMechanism
from repro.baselines.target_only import TargetOnlyMechanism
from repro.qos.classes import QoSRegistry
from repro.sim.config import SystemConfig
from repro.sim.records import AccessType, MemoryRequest
from repro.sim.stats import Stats
from repro.sim.system import System
from repro.workloads.chaser import ChaserWorkload
from repro.workloads.stream import StreamWorkload


def attributed_request(qos_id=0, pacer=10, noc=20, queue=30, service=40):
    req = MemoryRequest(addr=0x40, access=AccessType.READ, qos_id=qos_id, core_id=0)
    req.created_at = 0
    req.released_at = pacer
    req.arrived_mc_at = pacer + noc
    req.issued_at = pacer + noc + queue
    req.completed_at = pacer + noc + queue + service
    return req


class TestUnit:
    def test_stage_sums(self):
        stats = Stats()
        stats.record_completion(attributed_request())
        stats.record_completion(attributed_request(pacer=30))
        attribution = attribute_latency(stats, 0)
        assert attribution.reads == 2
        assert attribution.pacer == pytest.approx(20.0)
        assert attribution.noc == pytest.approx(20.0)
        assert attribution.queue == pytest.approx(30.0)
        assert attribution.service == pytest.approx(40.0)
        assert attribution.total == pytest.approx(110.0)
        assert attribution.fraction("queue") == pytest.approx(30 / 110)

    def test_empty_class(self):
        attribution = attribute_latency(Stats(), 5)
        assert attribution.reads == 0
        assert attribution.total == 0.0
        assert attribution.fraction("pacer") == 0.0

    def test_table_renders(self):
        stats = Stats()
        stats.record_completion(attributed_request())
        text = attribution_table(stats)
        assert "pacer" in text and "service" in text


class TestMechanismSignatures:
    """The breakdown explains each regulator's behaviour (DESIGN.md)."""

    def _run(self, mechanism):
        config = SystemConfig.default_experiment(cores=8, num_mcs=2)
        registry = QoSRegistry()
        registry.define_class(0, "chaser", weight=3, l3_ways=8)
        registry.define_class(1, "stream", weight=1, l3_ways=8)
        workloads = {}
        for core in range(4):
            registry.assign_core(core, 0)
            workloads[core] = ChaserWorkload(chains=8)
        for core in range(4, 8):
            registry.assign_core(core, 1)
            workloads[core] = StreamWorkload(write_fraction=1.0)
        system = System(config, registry, workloads, mechanism=mechanism)
        system.run_epochs(60)
        system.finalize()
        return system.stats

    def test_source_only_throttles_the_low_class_at_the_pacer(self):
        stats = self._run(SourceOnlyMechanism())
        low = attribute_latency(stats, 1)
        high = attribute_latency(stats, 0)
        # the 1-weight streamer pays heavily at its pacer; the chaser not
        assert low.pacer > 4 * max(1.0, high.pacer)

    def test_target_only_cuts_queueing_for_the_high_class(self):
        stats = self._run(TargetOnlyMechanism())
        low = attribute_latency(stats, 1)
        high = attribute_latency(stats, 0)
        assert high.queue < low.queue
        # and nobody pays pacer time without a governor
        assert high.pacer == 0.0 and low.pacer == 0.0
