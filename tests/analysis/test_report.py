"""Unit tests for text reports."""

import pytest

from repro.analysis.report import format_series, format_table, sparkline


class TestFormatTable:
    def test_alignment_and_headers(self):
        text = format_table(["name", "value"], [("a", 1.5), ("bb", 2)])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "1.500" in text
        assert "bb" in text

    def test_title_prepended(self):
        text = format_table(["x"], [(1,)], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_row_width_checked(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [(1,)])


class TestSparkline:
    def test_length_matches_input(self):
        assert len(sparkline([0.0, 0.5, 1.0])) == 3

    def test_monotone_values_monotone_glyphs(self):
        line = sparkline([0.0, 0.25, 0.5, 0.75, 1.0])
        ordered = " .:-=+*#%@"
        positions = [ordered.index(c) for c in line]
        assert positions == sorted(positions)

    def test_clamps_out_of_range(self):
        line = sparkline([-1.0, 2.0])
        assert line[0] == " " and line[1] == "@"

    def test_bounds_validated(self):
        with pytest.raises(ValueError):
            sparkline([0.5], lo=1.0, hi=1.0)


class TestFormatSeries:
    def test_includes_stats(self):
        text = format_series("lbl", [0.2, 0.4])
        assert "min=0.20" in text and "max=0.40" in text and "lbl" in text

    def test_empty_series(self):
        assert "no samples" in format_series("lbl", [])
