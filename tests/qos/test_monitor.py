"""Unit tests for the bandwidth/occupancy monitors."""

import pytest

from repro.cache.cache import SetAssociativeCache
from repro.qos.monitor import BandwidthMonitor, OccupancyMonitor
from repro.sim.stats import Stats


def stats_with_epochs():
    stats = Stats()
    from repro.sim.records import AccessType, MemoryRequest

    def complete(qos_id, count):
        for _ in range(count):
            req = MemoryRequest(addr=0, access=AccessType.READ, qos_id=qos_id, core_id=0)
            req.created_at = 0
            req.completed_at = 10
            stats.record_completion(req)

    complete(0, 3)
    complete(1, 1)
    stats.close_epoch(now=64)
    complete(0, 1)
    complete(1, 3)
    stats.close_epoch(now=128)
    return stats


class TestBandwidthMonitor:
    def test_bandwidth_over_whole_run(self):
        monitor = BandwidthMonitor(stats_with_epochs())
        # class 0: 4 lines x 64B over 128 cycles
        assert monitor.bandwidth(0) == pytest.approx(2.0)

    def test_bandwidth_over_window(self):
        monitor = BandwidthMonitor(stats_with_epochs())
        assert monitor.bandwidth(0, window_epochs=1) == pytest.approx(1.0)
        assert monitor.bandwidth(1, window_epochs=1) == pytest.approx(3.0)

    def test_share(self):
        monitor = BandwidthMonitor(stats_with_epochs())
        assert monitor.share(0) == pytest.approx(0.5)
        assert monitor.share(0, window_epochs=1) == pytest.approx(0.25)

    def test_utilization_requires_peak(self):
        monitor = BandwidthMonitor(stats_with_epochs(), peak_bytes_per_cycle=16.0)
        assert monitor.utilization(0) == pytest.approx(2.0 / 16.0)
        with pytest.raises(ValueError):
            BandwidthMonitor(stats_with_epochs()).utilization(0)

    def test_no_epochs_is_zero(self):
        assert BandwidthMonitor(Stats()).bandwidth(0) == 0.0

    def test_window_validation(self):
        monitor = BandwidthMonitor(stats_with_epochs())
        with pytest.raises(ValueError):
            monitor.bandwidth(0, window_epochs=0)

    def test_peak_validation(self):
        with pytest.raises(ValueError):
            BandwidthMonitor(Stats(), peak_bytes_per_cycle=0)


class TestOccupancyMonitor:
    def test_counts_lines_across_caches(self):
        caches = [
            SetAssociativeCache(f"c{i}", num_sets=4, assoc=2) for i in range(2)
        ]
        caches[0].access(0x000, False, qos_id=0)
        caches[0].access(0x040, False, qos_id=1)
        caches[1].access(0x080, False, qos_id=0)
        monitor = OccupancyMonitor(caches)
        assert monitor.occupancy_lines(0) == 2
        assert monitor.occupancy_lines(1) == 1
        assert monitor.occupancy_bytes(0) == 128

    def test_unknown_class_is_zero(self):
        monitor = OccupancyMonitor([])
        assert monitor.occupancy_lines(7) == 0
