"""Unit and property tests for proportional shares and strides."""

import pytest
from hypothesis import given, strategies as st

from repro.qos.shares import (
    DEFAULT_STRIDE_SCALE,
    proportional_share,
    proportional_shares,
    stride_for_weight,
    strides_for_weights,
)


class TestProportionalShares:
    def test_shares_sum_to_one(self):
        shares = proportional_shares({0: 7, 1: 3})
        assert shares[0] == pytest.approx(0.7)
        assert shares[1] == pytest.approx(0.3)
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_single_consumer_gets_everything(self):
        assert proportional_shares({5: 42})[5] == 1.0

    def test_proportional_share_scalar(self):
        assert proportional_share(1, [1, 1, 2]) == pytest.approx(0.25)
        assert proportional_share(2, {0: 1, 1: 1, 2: 2}) == pytest.approx(0.5)

    def test_rejects_nonpositive_weight(self):
        with pytest.raises(ValueError):
            proportional_shares({0: 0, 1: 1})
        with pytest.raises(ValueError):
            proportional_share(-1, [1, 2])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            proportional_shares({})


class TestStrides:
    def test_stride_inverse_of_weight(self):
        assert stride_for_weight(1, scale=64) == 64
        assert stride_for_weight(2, scale=64) == 32
        assert stride_for_weight(64, scale=64) == 1

    def test_stride_floor_is_one(self):
        assert stride_for_weight(1000, scale=64) == 1

    def test_stride_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            stride_for_weight(0)
        with pytest.raises(ValueError):
            stride_for_weight(1, scale=0)

    def test_paper_ratios_are_nearly_exact(self):
        """The share ratios the paper uses survive stride rounding."""
        for weights, ratio in [((3, 1), 3.0), ((7, 3), 7 / 3),
                               ((32, 1), 32.0), ((20, 1), 20.0)]:
            hi = stride_for_weight(weights[0])
            lo = stride_for_weight(weights[1])
            assert lo / hi == pytest.approx(ratio, rel=0.02)

    def test_strides_for_weights(self):
        strides = strides_for_weights({0: 2, 1: 1}, scale=128)
        assert strides == {0: 64, 1: 128}


@given(
    weight_a=st.integers(min_value=1, max_value=64),
    weight_b=st.integers(min_value=1, max_value=64),
)
def test_property_stride_ratio_tracks_inverse_weight_ratio(weight_a, weight_b):
    stride_a = stride_for_weight(weight_a, DEFAULT_STRIDE_SCALE)
    stride_b = stride_for_weight(weight_b, DEFAULT_STRIDE_SCALE)
    # stride ratio approximates the inverse weight ratio within rounding
    assert stride_b / stride_a == pytest.approx(weight_a / weight_b, rel=0.05)


@given(
    weights=st.dictionaries(
        st.integers(min_value=0, max_value=10),
        st.floats(min_value=0.1, max_value=100, allow_nan=False),
        min_size=1,
        max_size=8,
    )
)
def test_property_shares_sum_to_one_and_order_matches(weights):
    shares = proportional_shares(weights)
    assert sum(shares.values()) == pytest.approx(1.0)
    # each share is exactly proportional to its weight (this subsumes
    # order preservation without tripping on float ties: two weights that
    # differ by less than an ulp of the total legitimately quantize to
    # the same share, so a strict sorted-order comparison is too strong)
    total = sum(weights.values())
    for key, weight in weights.items():
        assert shares[key] == pytest.approx(weight / total)
