"""Tests for the software bandwidth-target policy."""

import pytest

from repro.core.pabst import PabstMechanism
from repro.qos.classes import QoSRegistry
from repro.qos.policy import BandwidthTargetPolicy
from repro.sim.config import SystemConfig
from repro.sim.system import System
from repro.workloads.stream import StreamWorkload


def make_system():
    config = SystemConfig.default_experiment(cores=8, num_mcs=2)
    registry = QoSRegistry()
    registry.define_class(0, "managed", weight=1, l3_ways=8)
    registry.define_class(1, "background", weight=1, l3_ways=8)
    workloads = {}
    for core in range(8):
        registry.assign_core(core, 0 if core < 4 else 1)
        workloads[core] = StreamWorkload()
    system = System(config, registry, workloads, mechanism=PabstMechanism())
    return system, registry


class TestValidation:
    def test_parameter_checks(self):
        system, registry = make_system()
        monitor = system.bandwidth_monitor
        with pytest.raises(ValueError):
            BandwidthTargetPolicy(registry, monitor, 0, target_utilization=0.0)
        with pytest.raises(ValueError):
            BandwidthTargetPolicy(registry, monitor, 0, 0.5, gain=1.0)
        with pytest.raises(ValueError):
            BandwidthTargetPolicy(registry, monitor, 0, 0.5, deadband=-1)
        with pytest.raises(KeyError):
            BandwidthTargetPolicy(registry, monitor, 99, 0.5)


class TestControlLoop:
    def test_raises_weight_when_underserved(self):
        """Equal weights give ~40-50%; a 60% target must raise the weight."""
        system, registry = make_system()
        policy = BandwidthTargetPolicy(
            registry, system.bandwidth_monitor, qos_id=0, target_utilization=0.55
        )
        initial = policy.weight
        for _ in range(20):
            system.run_epochs(5)
            policy.update()
        assert policy.weight > initial
        assert policy.adjustments > 0

    def test_converges_to_target_bandwidth(self):
        system, registry = make_system()
        target = 0.5
        policy = BandwidthTargetPolicy(
            registry, system.bandwidth_monitor, qos_id=0,
            target_utilization=target,
        )
        for _ in range(30):
            system.run_epochs(5)
            policy.update()
        system.finalize()
        achieved = system.bandwidth_monitor.utilization(0, window_epochs=20)
        assert achieved == pytest.approx(target, abs=0.12)

    def test_deadband_prevents_churn_at_target(self):
        system, registry = make_system()
        policy = BandwidthTargetPolicy(
            registry, system.bandwidth_monitor, qos_id=0,
            target_utilization=0.4, deadband=0.5,
        )
        for _ in range(10):
            system.run_epochs(5)
            policy.update()
        assert policy.adjustments == 0  # huge deadband: never adjusts

    def test_slew_limit_damps_oscillation(self):
        """Regression for the full-gain oscillation: alternating noisy
        windows just outside the deadband used to swing the weight by
        the whole gain every update.  The slew-limited step scales with
        the error, so the same noise barely moves the weight."""
        system, registry = make_system()
        target = 0.5
        policy = BandwidthTargetPolicy(
            registry, system.bandwidth_monitor, qos_id=0,
            target_utilization=target, gain=1.25, deadband=0.02,
        )
        start = policy.weight
        # 3% alternating noise: outside the 2% deadband, tiny error
        for cycle in range(10):
            observed = target * (1.03 if cycle % 2 else 0.97)
            policy.update(observed=observed)
        # old behaviour: each update multiplied/divided by the full 1.25
        # gain; one excess step either way leaves a >= 25% excursion.
        assert abs(policy.weight - start) / start < 0.10
        assert policy.adjustments == 10

    def test_max_step_caps_the_applied_step(self):
        system, registry = make_system()
        policy = BandwidthTargetPolicy(
            registry, system.bandwidth_monitor, qos_id=0,
            target_utilization=0.5, gain=2.0, max_step=1.05,
        )
        start = policy.weight
        policy.update(observed=0.0)  # huge error, slew would allow 2.0x
        assert policy.weight == pytest.approx(start * 1.05)
        with pytest.raises(ValueError):
            BandwidthTargetPolicy(
                registry, system.bandwidth_monitor, 0, 0.5, max_step=1.0
            )

    def test_every_update_is_accounted(self):
        """Regression for the adjustments undercount: deadband re-entries
        used to vanish from the books.  Now adjustments +
        deadband_holds == calls, always."""
        system, registry = make_system()
        target = 0.5
        policy = BandwidthTargetPolicy(
            registry, system.bandwidth_monitor, qos_id=0,
            target_utilization=target, deadband=0.05,
        )
        # in, out, back in the deadband
        for observed in (target, target * 1.2, target, target, target * 0.8):
            policy.update(observed=observed)
        assert policy.adjustments == 2
        assert policy.deadband_holds == 3
        assert policy.adjustments + policy.deadband_holds == 5

    def test_weight_clamped(self):
        system, registry = make_system()
        policy = BandwidthTargetPolicy(
            registry, system.bandwidth_monitor, qos_id=0,
            target_utilization=1.0, max_weight=4.0,
        )
        for _ in range(20):
            system.run_epochs(5)
            policy.update()
        assert policy.weight <= 4.0
