"""Unit tests for QoS classes and the QoSID registry."""

import pytest

from repro.qos.classes import QoSClass, QoSRegistry


class TestQoSClass:
    def test_stride_computed_from_weight(self):
        a = QoSClass(qos_id=0, name="a", weight=1)
        b = QoSClass(qos_id=1, name="b", weight=2)
        assert a.stride == pytest.approx(2 * b.stride, rel=0.01)

    def test_explicit_stride_kept(self):
        cls = QoSClass(qos_id=0, name="a", weight=1, stride=77)
        assert cls.stride == 77

    def test_validation(self):
        with pytest.raises(ValueError):
            QoSClass(qos_id=-1, name="bad", weight=1)
        with pytest.raises(ValueError):
            QoSClass(qos_id=0, name="bad", weight=0)
        with pytest.raises(ValueError):
            QoSClass(qos_id=0, name="bad", weight=1, stride=-3)


class TestRegistryClasses:
    def test_define_and_get(self):
        registry = QoSRegistry()
        defined = registry.define_class(3, "svc", weight=4)
        assert registry.get(3) is defined
        assert registry.weight(3) == 4
        assert registry.stride(3) == defined.stride

    def test_get_unknown_raises(self):
        with pytest.raises(KeyError, match="not defined"):
            QoSRegistry().get(9)

    def test_classes_sorted_by_id(self):
        registry = QoSRegistry()
        registry.define_class(2, "b", weight=1)
        registry.define_class(0, "a", weight=1)
        assert [c.qos_id for c in registry.classes] == [0, 2]
        assert registry.qos_ids == [0, 2]

    def test_share_follows_weights(self):
        registry = QoSRegistry()
        registry.define_class(0, "hi", weight=3)
        registry.define_class(1, "lo", weight=1)
        assert registry.share(0) == pytest.approx(0.75)
        assert registry.share(1) == pytest.approx(0.25)

    def test_redefining_replaces(self):
        registry = QoSRegistry()
        registry.define_class(0, "v1", weight=1)
        registry.define_class(0, "v2", weight=5)
        assert registry.get(0).name == "v2"
        assert registry.weight(0) == 5

    def test_stride_scale_validation(self):
        with pytest.raises(ValueError):
            QoSRegistry(stride_scale=0)


class TestCoreAssignment:
    def test_threads_tracks_assignments(self):
        registry = QoSRegistry()
        registry.define_class(0, "a", weight=1)
        registry.define_class(1, "b", weight=1)
        for core in range(3):
            registry.assign_core(core, 0)
        registry.assign_core(3, 1)
        assert registry.threads_in_class(0) == 3
        assert registry.threads_in_class(1) == 1

    def test_reassignment_moves_thread_count(self):
        registry = QoSRegistry()
        registry.define_class(0, "a", weight=1)
        registry.define_class(1, "b", weight=1)
        registry.assign_core(0, 0)
        registry.assign_core(0, 1)
        assert registry.threads_in_class(0) == 0
        assert registry.threads_in_class(1) == 1
        assert registry.class_of_core(0) == 1

    def test_assign_to_unknown_class_raises(self):
        registry = QoSRegistry()
        with pytest.raises(KeyError):
            registry.assign_core(0, 42)

    def test_unassigned_core_raises(self):
        registry = QoSRegistry()
        with pytest.raises(KeyError, match="no QoSID"):
            registry.class_of_core(0)

    def test_cores_in_class(self):
        registry = QoSRegistry()
        registry.define_class(0, "a", weight=1)
        registry.define_class(1, "b", weight=1)
        registry.assign_core(2, 0)
        registry.assign_core(0, 0)
        registry.assign_core(1, 1)
        assert registry.cores_in_class(0) == [0, 2]
        assert registry.cores_in_class(1) == [1]

    def test_threads_of_unpopulated_class_is_zero(self):
        registry = QoSRegistry()
        registry.define_class(0, "a", weight=1)
        assert registry.threads_in_class(0) == 0
