"""Unit tests for the counter/gauge registry."""

import pickle

import pytest

from repro.obs.registry import NULL_COUNTER, ObsCounter, Registry


class Component:
    def __init__(self):
        self.accepted = 0
        self.depth = 3


class TestRegistration:
    def test_counter_provider_reads_live_attribute(self):
        registry = Registry()
        component = Component()
        registry.register_counter("mc0.accepted", component, "accepted")
        assert registry.counters() == {"mc0.accepted": 0}
        component.accepted += 7
        assert registry.counters() == {"mc0.accepted": 7}

    def test_gauge_provider(self):
        registry = Registry()
        component = Component()
        registry.register_gauge("mc0.depth", component, "depth")
        component.depth = 11
        assert registry.gauges() == {"mc0.depth": 11}

    def test_duplicate_name_rejected_across_kinds(self):
        registry = Registry()
        component = Component()
        registry.register_counter("x", component, "accepted")
        with pytest.raises(ValueError):
            registry.register_counter("x", component, "accepted")
        with pytest.raises(ValueError):
            registry.register_gauge("x", component, "depth")

    def test_missing_attribute_rejected_at_registration(self):
        registry = Registry()
        with pytest.raises(AttributeError):
            registry.register_counter("x", Component(), "nope")

    def test_len_contains_and_names(self):
        registry = Registry()
        component = Component()
        registry.register_counter("a", component, "accepted")
        registry.register_gauge("b", component, "depth")
        assert len(registry) == 2
        assert "a" in registry and "b" in registry and "c" not in registry
        assert list(registry.names()) == ["a", "b"]

    def test_snapshot_is_jsonable(self):
        import json

        registry = Registry()
        registry.register_counter("a", Component(), "accepted")
        snapshot = registry.snapshot()
        assert json.loads(json.dumps(snapshot)) == {
            "counters": {"a": 0},
            "gauges": {},
        }


class TestOwnedCounters:
    def test_counter_mints_once_per_name(self):
        registry = Registry()
        counter = registry.counter("warnings")
        again = registry.counter("warnings")
        assert counter is again
        counter.add()
        counter.add(4)
        assert registry.counters() == {"warnings": 5}

    def test_disabled_registry_hands_back_null_counter(self):
        registry = Registry(enabled=False)
        counter = registry.counter("anything")
        assert counter is NULL_COUNTER
        counter.add(100)  # no-op, no error
        assert counter.value == 0
        assert len(registry) == 0

    def test_obs_counter_repr_and_monotonic(self):
        counter = ObsCounter("x")
        counter.add(3)
        assert counter.value == 3


class TestPickling:
    def test_registry_with_providers_round_trips(self):
        # (obj, attr) providers must pickle — checkpoints snapshot the
        # registry as part of the System graph
        registry = Registry()
        component = Component()
        component.accepted = 9
        registry.register_counter("mc0.accepted", component, "accepted")
        registry.counter("owned").add(2)
        clone = pickle.loads(pickle.dumps(registry))
        assert clone.counters() == {"mc0.accepted": 9, "owned": 2}
