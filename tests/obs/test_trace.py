"""Unit tests for the request tracer and Chrome trace export."""

import json

import pytest

from repro.obs.trace import (
    RequestTracer,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.sim.records import AccessType, MemoryRequest


def traced_request(tracer, qos_id=0, core_id=0, mc_id=0, l3_hit=False,
                   created=0, released=10, arrived=25, issued=40, done=80):
    """Walk one request through its full lifecycle under ``tracer``."""
    req = MemoryRequest(
        addr=0x40, access=AccessType.READ, qos_id=qos_id, core_id=core_id
    )
    req.mc_id = mc_id
    req.l3_hit = l3_hit
    req.created_at = created
    tracer.created(req)
    req.released_at = released
    tracer.released(req)
    if l3_hit:
        req.completed_at = done
        tracer.completed(req)
        return req
    req.arrived_mc_at = arrived
    tracer.arrived(req)
    req.issued_at = issued
    tracer.issued(req)
    req.completed_at = done
    tracer.completed(req)
    return req


class TestRingBuffer:
    def test_records_in_order(self):
        tracer = RequestTracer(capacity=16)
        req = traced_request(tracer)
        stages = [t[0] for t in tracer.transitions() if t[1] == req.req_id]
        assert stages == [0, 1, 2, 3, 4]
        assert tracer.recorded == 5
        assert tracer.dropped == 0

    def test_ring_evicts_oldest_and_counts_drops(self):
        tracer = RequestTracer(capacity=3)
        traced_request(tracer)  # 5 transitions into a 3-slot ring
        assert len(tracer) == 3
        assert tracer.recorded == 5
        assert tracer.dropped == 2
        # the survivors are the *last* three transitions
        assert [t[0] for t in tracer.transitions()] == [2, 3, 4]

    def test_clear_resets_everything(self):
        tracer = RequestTracer(capacity=4)
        traced_request(tracer)
        tracer.clear()
        assert len(tracer) == 0 and tracer.recorded == 0

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            RequestTracer(capacity=0)


class TestChromeExport:
    def test_full_lifecycle_emits_four_spans(self):
        tracer = RequestTracer()
        req = traced_request(tracer, qos_id=2, mc_id=1)
        doc = tracer.to_chrome_trace()
        spans = {e["name"]: e for e in doc["traceEvents"] if e["ph"] == "X"}
        assert set(spans) == {"pacer", "noc", "queue", "service"}
        assert spans["pacer"] == {
            "name": "pacer", "cat": "request", "ph": "X",
            "ts": 0, "dur": 10, "pid": 1, "tid": 2,
            "args": {"req": req.req_id, "core": 0},
        }
        # MC-side spans live on pid 2, lane = mc_id
        assert spans["queue"]["pid"] == 2 and spans["queue"]["tid"] == 1
        assert spans["service"]["ts"] == 40 and spans["service"]["dur"] == 40

    def test_l3_hit_gets_l3_span_instead_of_noc(self):
        tracer = RequestTracer()
        traced_request(tracer, l3_hit=True)
        names = [e["name"] for e in tracer.to_chrome_trace()["traceEvents"]
                 if e["ph"] == "X"]
        assert sorted(names) == ["l3", "pacer"]

    def test_partial_request_emits_only_complete_spans(self):
        # ring eviction can strip early transitions; spans need both ends
        tracer = RequestTracer(capacity=2)
        traced_request(tracer)  # only issued+completed survive
        names = [e["name"] for e in tracer.to_chrome_trace()["traceEvents"]
                 if e["ph"] == "X"]
        assert names == ["service"]

    def test_metadata_tracks_for_each_lane(self):
        tracer = RequestTracer()
        traced_request(tracer, qos_id=0, mc_id=0)
        traced_request(tracer, qos_id=3, mc_id=1)
        doc = tracer.to_chrome_trace()
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        process_names = {
            e["pid"]: e["args"]["name"]
            for e in meta if e["name"] == "process_name"
        }
        assert process_names == {1: "QoS classes", 2: "memory controllers"}
        thread_names = {
            (e["pid"], e["tid"]): e["args"]["name"]
            for e in meta if e["name"] == "thread_name"
        }
        assert thread_names[(1, 0)] == "class 0"
        assert thread_names[(1, 3)] == "class 3"
        assert thread_names[(2, 1)] == "mc 1"

    def test_other_data_reports_drop_accounting(self):
        tracer = RequestTracer(capacity=3)
        traced_request(tracer)
        other = tracer.to_chrome_trace()["otherData"]
        assert other["transitions_recorded"] == 5
        assert other["transitions_dropped"] == 2

    def test_export_validates(self):
        tracer = RequestTracer()
        traced_request(tracer)
        traced_request(tracer, l3_hit=True, qos_id=1)
        doc = tracer.to_chrome_trace()
        assert validate_chrome_trace(doc) == len(doc["traceEvents"])


class TestValidator:
    def test_rejects_non_object_document(self):
        with pytest.raises(ValueError):
            validate_chrome_trace([])
        with pytest.raises(ValueError):
            validate_chrome_trace({"events": []})

    def test_rejects_unknown_phase(self):
        with pytest.raises(ValueError, match="unknown phase"):
            validate_chrome_trace({"traceEvents": [{"ph": "Z"}]})

    def test_rejects_incomplete_x_event(self):
        event = {"ph": "X", "name": "s", "ts": 0, "dur": 1, "pid": 1}
        with pytest.raises(ValueError, match="missing 'tid'"):
            validate_chrome_trace({"traceEvents": [event]})

    def test_rejects_bool_and_negative_timing(self):
        base = {"ph": "X", "name": "s", "ts": 0, "dur": 1, "pid": 1, "tid": 0}
        for bad in ({"ts": True}, {"dur": -1}, {"ts": -5}, {"name": 7}):
            event = {**base, **bad}
            with pytest.raises(ValueError):
                validate_chrome_trace({"traceEvents": [event]})

    def test_rejects_unknown_metadata(self):
        event = {"ph": "M", "name": "bogus", "args": {"name": "x"}}
        with pytest.raises(ValueError, match="unknown metadata"):
            validate_chrome_trace({"traceEvents": [event]})
        event = {"ph": "M", "name": "thread_name", "args": {}}
        with pytest.raises(ValueError, match="needs args"):
            validate_chrome_trace({"traceEvents": [event]})


class TestFileOutput:
    def test_write_validates_then_writes_json(self, tmp_path):
        tracer = RequestTracer()
        traced_request(tracer)
        out = tmp_path / "trace.json"
        written = write_chrome_trace(out, tracer.to_chrome_trace())
        assert written == out
        loaded = json.loads(out.read_text())
        assert validate_chrome_trace(loaded) > 0

    def test_write_refuses_invalid_document(self, tmp_path):
        out = tmp_path / "bad.json"
        with pytest.raises(ValueError):
            write_chrome_trace(out, {"traceEvents": [{"ph": "Z"}]})
        assert not out.exists()
