"""Unit tests for epoch metric records and sinks."""

import json
import pickle

from repro.obs.streams import JsonlSink, MemorySink, epoch_record
from repro.sim.stats import EpochSample


def sample(**overrides):
    base = dict(
        epoch=3,
        start_cycle=1000,
        end_cycle=2000,
        bytes_by_class={0: 640, 1: 320},
        saturated=True,
        multiplier=12,
    )
    base.update(overrides)
    return EpochSample(**base)


class TestEpochRecord:
    def test_bandwidth_per_class(self):
        record = epoch_record(sample())
        assert record["cycles"] == 1000
        assert record["bandwidth_by_class"] == {0: 0.64, 1: 0.32}
        assert record["saturated"] is True
        assert record["multiplier"] == 12

    def test_zero_length_epoch_reports_zero_bandwidth(self):
        record = epoch_record(sample(end_cycle=1000))
        assert record["cycles"] == 0
        assert record["bandwidth_by_class"] == {0: 0.0, 1: 0.0}

    def test_multiplier_sentinel_becomes_none(self):
        assert epoch_record(sample(multiplier=-1))["multiplier"] is None

    def test_record_is_jsonable_and_detached(self):
        original = sample()
        record = epoch_record(original)
        json.dumps(record)
        record["bytes_by_class"][0] = 0
        assert original.bytes_by_class[0] == 640


class TestMemorySink:
    def test_accumulates(self):
        sink = MemorySink()
        sink.publish({"epoch": 0})
        sink.publish({"epoch": 1})
        sink.close()
        assert len(sink) == 2
        assert [r["epoch"] for r in sink.samples] == [0, 1]


class TestJsonlSink:
    def test_appends_one_line_per_record(self, tmp_path):
        path = tmp_path / "epochs.jsonl"
        with JsonlSink(path) as sink:
            sink.publish(epoch_record(sample(epoch=0)))
            sink.publish(epoch_record(sample(epoch=1)))
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[1])["epoch"] == 1
        assert sink.published == 2

    def test_lazy_open_no_file_until_first_publish(self, tmp_path):
        path = tmp_path / "epochs.jsonl"
        sink = JsonlSink(path)
        assert not path.exists()
        sink.publish({"epoch": 0})
        assert path.exists()
        sink.close()

    def test_pickle_mid_stream_resumes_same_file(self, tmp_path):
        # a checkpointed System may carry a JSONL sink; the restored
        # clone must keep appending to the same path
        path = tmp_path / "epochs.jsonl"
        sink = JsonlSink(path)
        sink.publish({"epoch": 0})
        clone = pickle.loads(pickle.dumps(sink))
        clone.publish({"epoch": 1})
        clone.close()
        sink.close()
        epochs = [json.loads(line)["epoch"]
                  for line in path.read_text().splitlines()]
        assert epochs == [0, 1]
        assert clone.published == 2

    def test_close_is_idempotent(self, tmp_path):
        sink = JsonlSink(tmp_path / "x.jsonl")
        sink.close()
        sink.close()
