"""Unit tests for the process-global warning counters."""

import logging

import pytest

from repro.obs.warnings import obs_warn, reset_warning_counters, warning_counts


@pytest.fixture(autouse=True)
def isolated_counters():
    reset_warning_counters()
    yield
    reset_warning_counters()


def test_counts_by_name():
    obs_warn("cache.utime_failed", "could not touch %s", "x.json")
    obs_warn("cache.utime_failed", "could not touch %s", "y.json")
    obs_warn("checkpoint.evict_unlink_failed", "could not evict %s", "z.pkl")
    assert warning_counts() == {
        "cache.utime_failed": 2,
        "checkpoint.evict_unlink_failed": 1,
    }


def test_logs_through_repro_obs_logger(caplog):
    with caplog.at_level(logging.WARNING, logger="repro.obs"):
        obs_warn("cache.utime_failed", "could not touch %s", "x.json")
    assert "could not touch x.json" in caplog.text
    assert caplog.records[0].name == "repro.obs"


def test_reset_clears():
    obs_warn("a", "msg")
    reset_warning_counters()
    assert warning_counts() == {}


def test_snapshot_is_a_copy():
    obs_warn("a", "msg")
    snapshot = warning_counts()
    snapshot["a"] = 99
    assert warning_counts()["a"] == 1
