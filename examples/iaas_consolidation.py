#!/usr/bin/env python3
"""IaaS consolidation: four equal tenants with work-conserving shares
(the Fig. 11 scenario at example scale).

Four "virtual machines" each get a 25% bandwidth share on one consolidated
host.  Because PABST is work conserving, a tenant whose neighbours idle
gets their leftover bandwidth — so consolidation under PABST beats a hard
static 25% reservation (emulated by running alone with DRAM clocked 4x
slower).

Run:  python examples/iaas_consolidation.py [--workload soplex] [--epochs 80]
"""

import argparse

from repro import SPEC_PROFILES, SystemConfig, spec_workload, static_partition_config
from repro.core.pabst import PabstMechanism
from repro.experiments.common import ClassSpec, build_system, run_system

TENANTS = 4
CORES_PER_TENANT = 2


def run_static(workload: str, epochs: int) -> float:
    config = static_partition_config(
        SystemConfig.default_experiment(cores=CORES_PER_TENANT, num_mcs=2), TENANTS
    )
    specs = [
        ClassSpec(0, workload, weight=1, cores=CORES_PER_TENANT,
                  workload_factory=lambda: spec_workload(workload))
    ]
    system = build_system(specs, config=config)
    run_system(system, epochs=epochs, warmup_epochs=1)
    return system.stats.ipc(0, system.engine.now) / CORES_PER_TENANT


def run_consolidated(workload: str, epochs: int) -> list[float]:
    specs = [
        ClassSpec(tenant, f"vm{tenant}", weight=1, cores=CORES_PER_TENANT,
                  workload_factory=lambda: spec_workload(workload), l3_ways=4)
        for tenant in range(TENANTS)
    ]
    system = build_system(specs, mechanism=PabstMechanism())
    run_system(system, epochs=epochs, warmup_epochs=1)
    return [
        system.stats.ipc(tenant, system.engine.now) / CORES_PER_TENANT
        for tenant in range(TENANTS)
    ]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--workload", default="soplex", choices=sorted(SPEC_PROFILES),
        help="workload every tenant runs (default: soplex)",
    )
    parser.add_argument("--epochs", type=int, default=80)
    args = parser.parse_args()

    static_ipc = run_static(args.workload, args.epochs)
    tenant_ipcs = run_consolidated(args.workload, args.epochs)

    print(f"Four '{args.workload}' tenants, 25% bandwidth share each\n")
    print(f"static 1/4 reservation (run alone, DDR/4): {static_ipc:.3f} IPC/core")
    for tenant, ipc in enumerate(tenant_ipcs):
        gain = (ipc / static_ipc - 1.0) * 100 if static_ipc else 0.0
        print(f"tenant vm{tenant} under PABST:                   "
              f"{ipc:.3f} IPC/core  ({gain:+.0f}%)")
    mean = sum(tenant_ipcs) / len(tenant_ipcs)
    print(f"\nmean improvement from work conservation: "
          f"{(mean / static_ipc - 1.0) * 100:+.0f}%")
    print("Every tenant keeps its 25% floor, but bursts into bandwidth its")
    print("neighbours are not using — the paper's IaaS use case (Fig. 11).")


if __name__ == "__main__":
    main()
