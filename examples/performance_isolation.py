#!/usr/bin/env python3
"""Performance isolation: protect a latency-critical service from a noisy
neighbour (the Fig. 10 scenario at example scale).

A high-priority SPEC-proxy workload shares the machine with a streaming
aggressor at a 32:1 bandwidth share.  The script reports the weighted
slowdown of the protected class, relative to running alone, for each QoS
mechanism.

Run:  python examples/performance_isolation.py [--workload mcf] [--epochs 80]
"""

import argparse

from repro import SPEC_PROFILES, StreamWorkload, spec_workload
from repro.analysis.metrics import weighted_slowdown
from repro.experiments.common import (
    ClassSpec,
    build_system,
    make_mechanism,
    run_system,
)

PROTECTED_CORES = 4
AGGRESSOR_CORES = 4


def per_core_ipcs(system, cores):
    return [system.cores[c].instructions / system.engine.now for c in cores]


def run_isolated(workload: str, epochs: int) -> list[float]:
    specs = [
        ClassSpec(0, workload, weight=32, cores=PROTECTED_CORES,
                  workload_factory=lambda: spec_workload(workload), l3_ways=8)
    ]
    system = build_system(specs)
    run_system(system, epochs=epochs, warmup_epochs=1)
    return per_core_ipcs(system, range(PROTECTED_CORES))


def run_shared(workload: str, mechanism: str, epochs: int) -> list[float]:
    specs = [
        ClassSpec(0, workload, weight=32, cores=PROTECTED_CORES,
                  workload_factory=lambda: spec_workload(workload), l3_ways=8),
        ClassSpec(1, "aggressor", weight=1, cores=AGGRESSOR_CORES,
                  workload_factory=StreamWorkload, l3_ways=8),
    ]
    system = build_system(specs, mechanism=make_mechanism(mechanism))
    run_system(system, epochs=epochs, warmup_epochs=1)
    return per_core_ipcs(system, range(PROTECTED_CORES))


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--workload", default="sphinx3", choices=sorted(SPEC_PROFILES),
        help="protected SPEC-proxy workload (default: sphinx3)",
    )
    parser.add_argument("--epochs", type=int, default=80)
    args = parser.parse_args()

    print(f"Protected workload: {args.workload} (32:1 share vs streamer)\n")
    isolated = run_isolated(args.workload, args.epochs)
    print(f"{'mechanism':<14} {'weighted slowdown':>18}")
    print("-" * 34)
    for mechanism in ("none", "source-only", "target-only", "pabst"):
        shared = run_shared(args.workload, mechanism, args.epochs)
        slowdown = weighted_slowdown(isolated, shared)
        bar = "#" * round((slowdown - 1.0) * 20)
        print(f"{mechanism:<14} {slowdown:>8.2f}x  {bar}")
    print("\n1.00x means full isolation; the streaming neighbour costs the")
    print("unprotected run its queueing headroom, and PABST wins it back.")


if __name__ == "__main__":
    main()
