#!/usr/bin/env python3
"""Software policy on top of PABST: steer a tenant to a bandwidth target.

PABST is mechanism, not policy (paper Section II-C): software owns the
weights.  This example runs a feedback controller
(`repro.qos.BandwidthTargetPolicy`) that adjusts one tenant's weight every
few epochs until its measured bandwidth hits a target fraction of peak —
the kind of loop a cluster manager would run against the hardware knobs.

Run:  python examples/adaptive_policy.py [--target 0.6]
"""

import argparse

from repro import PabstMechanism, QoSRegistry, StreamWorkload, System, SystemConfig
from repro.qos.policy import BandwidthTargetPolicy


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--target", type=float, default=0.6,
                        help="bandwidth target for the managed tenant "
                             "(fraction of peak, default 0.6)")
    parser.add_argument("--rounds", type=int, default=24)
    args = parser.parse_args()

    config = SystemConfig.default_experiment(cores=8, num_mcs=2)
    registry = QoSRegistry()
    registry.define_class(0, "managed", weight=1, l3_ways=8)
    registry.define_class(1, "background", weight=1, l3_ways=8)
    workloads = {}
    for core in range(8):
        registry.assign_core(core, 0 if core < 4 else 1)
        workloads[core] = StreamWorkload()
    system = System(config, registry, workloads, mechanism=PabstMechanism())
    policy = BandwidthTargetPolicy(
        registry, system.bandwidth_monitor, qos_id=0,
        target_utilization=args.target,
    )

    print(f"steering 'managed' to {args.target:.0%} of peak "
          f"(both tenants start at weight 1)\n")
    print(f"{'round':>5} {'weight':>8} {'measured':>9}")
    for round_index in range(args.rounds):
        system.run_epochs(5)
        measured = system.bandwidth_monitor.utilization(0, window_epochs=5)
        print(f"{round_index:>5} {policy.weight:>8.2f} {measured:>8.1%}")
        policy.update()
    system.finalize()

    final = system.bandwidth_monitor.utilization(0, window_epochs=15)
    print(f"\nconverged: weight={policy.weight:.2f}, "
          f"bandwidth={final:.1%} of peak (target {args.target:.0%})")
    print("The governor re-reads strides every epoch, so software can")
    print("retune allocations online without touching the hardware model.")


if __name__ == "__main__":
    main()
