#!/usr/bin/env python3
"""Quickstart: partition memory bandwidth 3:1 between two streaming tenants.

Builds an 8-core system with two QoS classes, runs it twice — once without
any bandwidth QoS and once under PABST — and prints the bandwidth split
each class actually observed.

Run:  python examples/quickstart.py
"""

from repro import (
    NoQosMechanism,
    PabstMechanism,
    QoSRegistry,
    StreamWorkload,
    System,
    SystemConfig,
)


def build_registry() -> QoSRegistry:
    """Two classes: 'prod' is entitled to 3x the bandwidth of 'batch'."""
    registry = QoSRegistry()
    registry.define_class(0, "prod", weight=3, l3_ways=8)
    registry.define_class(1, "batch", weight=1, l3_ways=8)
    for core in range(8):
        registry.assign_core(core, 0 if core < 4 else 1)
    return registry


def run_once(mechanism, seed: int = 0):
    config = SystemConfig.default_experiment(cores=8, num_mcs=2)
    workloads = {core: StreamWorkload() for core in range(8)}
    system = System(config, build_registry(), workloads, mechanism=mechanism, seed=seed)
    system.run_epochs(100)
    system.finalize()
    return system


def describe(label: str, system) -> None:
    stats = system.stats
    prod = stats.bandwidth_share(0)
    batch = stats.bandwidth_share(1)
    total = stats.total_bytes() / system.engine.now
    print(f"{label}")
    print(f"  prod  share: {prod:5.1%}   (entitled 75%)")
    print(f"  batch share: {batch:5.1%}   (entitled 25%)")
    print(f"  total bandwidth: {total:.1f} B/cycle "
          f"({total / system.config.peak_bandwidth:.0%} of peak)")


def main() -> None:
    print("PABST quickstart: two streaming tenants, 3:1 shares\n")
    describe("Without bandwidth QoS (FR-FCFS only):", run_once(NoQosMechanism()))
    print()
    describe("With PABST:", run_once(PabstMechanism()))
    print("\nPABST throttles the over-consuming class at its source and")
    print("prioritizes the under-served class at the memory controller,")
    print("so observed bandwidth tracks the configured 3:1 split.")


if __name__ == "__main__":
    main()
