#!/usr/bin/env python3
"""memcached co-location: kill the tail latency a noisy neighbour causes
(the Fig. 9 scenario at example scale).

A single memcached server thread (high priority, 20:1 share) is co-located
with streaming aggressors.  The script prints the transaction service-time
distribution for: the server alone, co-located without QoS, and co-located
under PABST.

Run:  python examples/memcached_colocation.py [--epochs 150]
"""

import argparse

from repro import MemcachedWorkload, StreamWorkload
from repro.analysis.metrics import percentile
from repro.experiments.common import ClassSpec, build_system, make_mechanism, run_system


def run_config(label: str, mechanism: str | None, with_stream: bool, epochs: int):
    memcached = MemcachedWorkload(transactions=None, warmup_transactions=50)
    specs = [
        ClassSpec(0, "memcached", weight=20, cores=1,
                  workload_factory=lambda: memcached, l3_ways=8)
    ]
    if with_stream:
        specs.append(
            ClassSpec(1, "stream", weight=1, cores=4,
                      workload_factory=StreamWorkload, l3_ways=8)
        )
    system = build_system(
        specs, mechanism=make_mechanism(mechanism) if mechanism else None
    )
    run_system(system, epochs=epochs, warmup_epochs=1)
    return label, memcached.service_times


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=150)
    args = parser.parse_args()

    runs = [
        run_config("isolated", None, with_stream=False, epochs=args.epochs),
        run_config("co-located, no QoS", "none", with_stream=True, epochs=args.epochs),
        run_config("co-located, PABST", "pabst", with_stream=True, epochs=args.epochs),
    ]

    print("memcached GET service times (cycles), 20:1 share vs streamer\n")
    print(f"{'configuration':<22} {'txns':>5} {'mean':>8} {'p50':>8} "
          f"{'p95':>8} {'p99':>8}")
    print("-" * 64)
    baseline_mean = None
    for label, samples in runs:
        mean = sum(samples) / len(samples) if samples else 0.0
        if baseline_mean is None:
            baseline_mean = mean
        print(f"{label:<22} {len(samples):>5} {mean:>8.0f} "
              f"{percentile(samples, 50):>8.0f} {percentile(samples, 95):>8.0f} "
              f"{percentile(samples, 99):>8.0f}")
    print("\nWithout QoS the streamer's queue pressure stretches both the")
    print("mean and the p99 tail; PABST's arbiter keeps the server's reads")
    print("at the head of the controller queue and restores the distribution.")


if __name__ == "__main__":
    main()
